"""Static analysis and optimisation of MAGIC programs.

The stage schedules in :mod:`repro.karatsuba` are hand-tuned to the
paper's cycle budgets, but generated programs benefit from tooling:

* :func:`liveness` — per-op read/write row sets and last-use analysis;
* :func:`check_protocol` — static verification of the MAGIC execution
  discipline (every NOR/NOT output row is initialised by an earlier
  INIT, shift write, or piggy-backed init since its last clobber) —
  the same rule the executor enforces dynamically, but without running;
* :func:`eliminate_dead_ops` — drops logic ops whose results are never
  read (conservative: READ, WRITE, SHIFT targets and out-of-program
  rows count as live);
* :func:`coalesce_inits` — merges adjacent INIT ops over disjoint row
  sets into single multi-row cycles (the hardware can drive several
  word lines at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.magic.ops import (
    Init,
    MicroOp,
    Nop,
    Nor,
    Not,
    ParallelNor,
    ParallelNot,
    Read,
    Shift,
    Write,
)
from repro.magic.program import Program
from repro.sim.exceptions import ProgramError


@dataclass(frozen=True)
class OpEffect:
    """Rows an op reads and writes (column ranges ignored: the checks
    are conservative across the whole row)."""

    reads: Tuple[int, ...]
    writes: Tuple[int, ...]
    initialises: Tuple[int, ...]


def effect_of(op: MicroOp) -> OpEffect:
    """Classify one op's row effects."""
    if isinstance(op, Init):
        return OpEffect(reads=(), writes=op.rows, initialises=op.rows)
    if isinstance(op, Nor):
        return OpEffect(reads=op.in_rows, writes=(op.out_row,), initialises=())
    if isinstance(op, Not):
        return OpEffect(reads=(op.in_row,), writes=(op.out_row,), initialises=())
    if isinstance(op, Write):
        return OpEffect(reads=(), writes=(op.row,), initialises=())
    if isinstance(op, Read):
        return OpEffect(reads=(op.row,), writes=(), initialises=())
    if isinstance(op, Shift):
        return OpEffect(
            reads=(op.src_row,),
            writes=(op.dst_row,) + tuple(op.also_init),
            initialises=tuple(op.also_init),
        )
    if isinstance(op, (ParallelNor, ParallelNot)):
        reads: List[int] = []
        writes: List[int] = []
        for g in op.gates:
            reads.extend(g.in_rows if isinstance(g, Nor) else (g.in_row,))
            writes.append(g.out_row)
        return OpEffect(
            reads=tuple(dict.fromkeys(reads)),
            writes=tuple(writes),
            initialises=(),
        )
    if isinstance(op, Nop):
        return OpEffect(reads=(), writes=(), initialises=())
    raise ProgramError(f"unknown op {op!r}")


def liveness(program: Program) -> List[Set[int]]:
    """Live-row sets *after* each op (backwards dataflow)."""
    live: Set[int] = set()
    result: List[Set[int]] = [set()] * len(program.ops)
    out: List[Set[int]] = []
    for op in reversed(program.ops):
        out.append(set(live))
        eff = effect_of(op)
        live -= set(eff.writes)
        live |= set(eff.reads)
    out.reverse()
    del result
    return out


@dataclass(frozen=True)
class ProtocolReport:
    """Result of the static MAGIC-discipline check."""

    ok: bool
    violations: Tuple[str, ...]


def check_protocol(
    program: Program, initially_ones: Set[int] = frozenset()
) -> ProtocolReport:
    """Statically verify that every NOR/NOT output row holds logic one.

    A row is *one-armed* after an INIT covering it, after appearing in
    a shift's ``also_init``, or if listed in *initially_ones* (rows the
    surrounding stage guarantees, e.g. after the previous pass's
    reset).  Any write de-arms the row.
    """
    armed: Set[int] = set(initially_ones)
    violations: List[str] = []
    for index, op in enumerate(program.ops):
        eff = effect_of(op)
        if isinstance(op, (Nor, Not)) and op.out_row not in armed:
            violations.append(
                f"op {index} ({op.opcode}): output row {op.out_row} "
                "not initialised to logic one"
            )
        elif isinstance(op, (ParallelNor, ParallelNot)):
            # Every gate of a pack fires in the same cycle, so each
            # output row must be armed at pack entry.
            for g in op.gates:
                if g.out_row not in armed:
                    violations.append(
                        f"op {index} (parallel {op.opcode}): output row "
                        f"{g.out_row} not initialised to logic one"
                    )
        armed -= set(eff.writes)
        armed |= set(eff.initialises)
    return ProtocolReport(ok=not violations, violations=tuple(violations))


def eliminate_dead_ops(
    program: Program, keep_rows: Set[int] = frozenset()
) -> Program:
    """Drop NOR/NOT ops whose outputs are never subsequently read.

    INIT/WRITE/SHIFT/READ ops are kept (they have architectural or
    external effects); only pure logic ops are candidates.  Rows the
    surrounding stage observes out-of-band (e.g. a sum row the
    controller senses after the program ends) must be listed in
    *keep_rows* or their producing ops would be considered dead.
    """
    live_after = liveness(program)
    kept: List[MicroOp] = []
    for op, live in zip(program.ops, live_after):
        if (
            isinstance(op, (Nor, Not))
            and op.out_row not in live
            and op.out_row not in keep_rows
        ):
            continue
        kept.append(op)
    return Program(ops=kept, label=program.label + "+dce")


def coalesce_inits(program: Program) -> Program:
    """Merge INITs with identical column ranges into multi-row cycles.

    An INIT hoists back into an earlier INIT with the same column
    window whenever no op in between touches (reads *or* writes) any of
    its rows: arming those rows earlier is then observationally
    equivalent — nothing reads the overwritten content, nothing
    clobbers the arming before its original position — so the merge is
    protocol-safe.  This subsumes the historical adjacent-only merge
    and additionally catches INIT pairs separated by unrelated ops
    (e.g. the two halves of a scratch reset with logic in between).
    """
    merged: List[MicroOp] = []
    for op in program.ops:
        if not isinstance(op, Init):
            merged.append(op)
            continue
        rows = set(op.rows)
        target = None
        # Scan backwards until a dependence on this INIT's rows blocks
        # further hoisting; the nearest compatible INIT before the
        # blocker absorbs it.
        for candidate in reversed(merged):
            if isinstance(candidate, Init) and candidate.cols == op.cols:
                target = candidate
                break
            eff = effect_of(candidate)
            if rows & (set(eff.reads) | set(eff.writes)):
                break
        if target is None:
            merged.append(op)
            continue
        index = len(merged) - 1
        while merged[index] is not target:
            index -= 1
        merged[index] = Init(
            rows=tuple(dict.fromkeys(target.rows + op.rows)), cols=op.cols
        )
    return Program(ops=merged, label=program.label + "+coalesce")


def optimization_summary(before: Program, after: Program) -> str:
    """Human-readable one-liner for logs and benches."""
    return (
        f"{before.label or 'program'}: {len(before)} ops / "
        f"{before.cycle_count} cc -> {len(after)} ops / "
        f"{after.cycle_count} cc"
    )
