"""Executor backend protocol and registry for batched MAGIC execution.

One batched MAGIC replay — a compiled program evaluated over *B*
operand sets in lock-step — has three interchangeable execution
strategies, all accounting-equivalent per lane:

* ``scalar`` — :class:`ScalarBackend`: one :class:`~repro.magic.executor.MagicExecutor`
  pass per lane on per-lane array copies.  Slowest, but it is the
  bit-exact oracle the other two are differentially tested against.
* ``bitplane`` — :class:`BitPlaneBackend`: the historical
  :class:`~repro.magic.executor.BatchedMagicExecutor` path over a
  ``(batch, rows, cols)`` bool tensor (one byte per logical bit).
* ``word`` — :class:`WordPackedBackend`: the
  :class:`~repro.magic.executor.WordPackedMagicExecutor` fast path
  packing 64 lanes per machine word into big-integer rows.

A backend is a factory pair: :meth:`ExecutorBackend.make_array` clones
a scalar template array into a batch-capable container and
:meth:`ExecutorBackend.make_executor` wraps it in the matching
executor.  Everything downstream (stage batch paths, the service
config, benchmarks) selects a backend by registry name through
:func:`get_backend`; per-lane results, cycle counts, write counters
and energy are bit-identical across all three, so the choice only
moves wall-clock simulation speed.

The paper's closed-form cycle counts are a property of the *programs*,
not the backend — every backend replays the same compiled program and
ticks the same clock histogram, so Sec. IV latency/energy numbers are
reproducible under any of the three.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.crossbar.array import (
    BatchedCrossbarArray,
    CrossbarArray,
    WordPackedCrossbarArray,
)
from repro.magic.executor import (
    BatchedMagicExecutor,
    CompiledProgram,
    MagicExecutor,
    WordPackedMagicExecutor,
)
from repro.sim.clock import Clock
from repro.sim.exceptions import ProgramError
from repro.sim.stats import RunStats
from repro.sim.trace import Trace


class ExecutorBackend:
    """Strategy interface for batched MAGIC execution.

    Concrete backends provide two factories; everything else (compile
    caches, stage fold-back of writes/energy, telemetry) is shared
    machinery that only touches the uniform array/executor surface:
    ``reset_to_ones`` / ``repin_faults`` / ``writes`` / ``energy_fj`` /
    ``total_energy_fj`` / ``snapshot(lane)`` on arrays, and
    ``execute(compiled, bindings)`` on executors.
    """

    #: Registry name (``"scalar"`` / ``"bitplane"`` / ``"word"``).
    name: str = ""

    def make_array(self, template: CrossbarArray, batch: int):
        """Clone *template*'s state/faults/remap into a batch container."""
        raise NotImplementedError

    def make_executor(self, array, clock=None, trace=None, fault_hook=None):
        """Wrap a :meth:`make_array` product in the matching executor."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class ScalarLaneArray:
    """Batch of independent scalar array copies (the oracle layout).

    Exposes the same accounting surface as the SIMD containers so the
    stage batch paths can fold counters back uniformly: ``writes`` has
    per-lane semantics (every lane pulses identically, lane 0 is
    reported), ``energy_fj`` is the per-lane vector.
    """

    def __init__(self, lanes: List[CrossbarArray]):
        if not lanes:
            raise ValueError("ScalarLaneArray needs at least one lane")
        self.lanes = lanes
        first = lanes[0]
        self.batch = len(lanes)
        self.rows = first.rows
        self.cols = first.cols
        self.spare_rows = first.spare_rows
        self.device = first.device
        self.strict_magic = first.strict_magic

    @classmethod
    def from_scalar(cls, array: CrossbarArray, batch: int) -> "ScalarLaneArray":
        lanes = []
        for _ in range(batch):
            lane = CrossbarArray(
                array.rows,
                array.cols,
                device=array.device,
                strict_magic=array.strict_magic,
                spare_rows=array.spare_rows,
            )
            lane.state[:] = array.state
            lane._faults = dict(array._faults)
            lane._row_map = list(array._row_map)
            lane._spares_free = list(array._spares_free)
            lane._apply_faults()
            lanes.append(lane)
        return cls(lanes)

    @property
    def phys_rows(self) -> int:
        return self.rows + self.spare_rows

    def physical_row(self, row: int) -> int:
        return self.lanes[0].physical_row(row)

    @property
    def writes(self) -> np.ndarray:
        """Per-lane write counters (lane 0; placement is data-independent)."""
        return self.lanes[0].writes

    @property
    def energy_fj(self) -> np.ndarray:
        """Per-lane accumulated energy, ``(batch,)`` float64."""
        return np.array([lane.energy_fj for lane in self.lanes])

    def lane_energy_fj(self, lane: int) -> float:
        return float(self.lanes[lane].energy_fj)

    def total_energy_fj(self) -> float:
        return float(self.energy_fj.sum())

    def max_writes(self) -> int:
        return self.lanes[0].max_writes()

    def total_writes(self) -> int:
        return self.lanes[0].total_writes()

    @property
    def faults(self):
        return self.lanes[0].faults

    def inject_fault(self, row: int, col: int, kind: str) -> None:
        for lane in self.lanes:
            lane.inject_fault(row, col, kind)

    def repin_faults(self) -> None:
        for lane in self.lanes:
            lane.repin_faults()

    def reset_to_ones(self) -> None:
        for lane in self.lanes:
            lane.state[:] = True

    def snapshot(self, lane: int) -> np.ndarray:
        return self.lanes[lane].snapshot()

    # -- batched memory operations (per-lane words) --------------------
    def peek_row(self, row: int) -> np.ndarray:
        return np.stack([lane.peek_row(row) for lane in self.lanes])

    def read_row(self, row: int) -> np.ndarray:
        return np.stack([lane.read_row(row) for lane in self.lanes])

    def write_row(self, row: int, bits, mask=None) -> None:
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.batch, self.cols):
            raise ValueError(
                f"word shape {bits.shape} != ({self.batch}, {self.cols})"
            )
        for lane, word in zip(self.lanes, bits):
            lane.write_row(row, word, mask)

    def init_rows(self, rows, mask=None) -> None:
        for lane in self.lanes:
            lane.init_rows(rows, mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScalarLaneArray({self.batch}x{self.rows}x{self.cols})"


class ScalarLaneExecutor:
    """Oracle batch executor: one scalar pass per lane, lock-step clock.

    Each lane runs through a fresh :class:`MagicExecutor` with a
    throwaway clock; the shared clock then advances once by the
    program's cycle histogram, matching the SIMD backends' lock-step
    semantics.  Slow by construction — this is the reference the fast
    paths are differentially tested against, not a production path.
    """

    def __init__(
        self,
        array: ScalarLaneArray,
        clock: Optional[Clock] = None,
        trace: Optional[Trace] = None,
        fault_hook=None,
    ):
        self.array = array
        self.clock = clock if clock is not None else Clock()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.fault_hook = fault_hook

    def compile(self, program) -> CompiledProgram:
        return CompiledProgram(program, self.array.rows, self.array.cols)

    def execute(
        self,
        program,
        bindings_list: Sequence[Dict[str, int]],
    ) -> List[RunStats]:
        compiled = (
            program
            if isinstance(program, CompiledProgram)
            else self.compile(program)
        )
        if compiled.rows != self.array.rows or compiled.cols != self.array.cols:
            raise ProgramError(
                f"program compiled for {compiled.rows}x{compiled.cols} "
                f"cannot run on {self.array.rows}x{self.array.cols}"
            )
        if len(bindings_list) != self.array.batch:
            raise ProgramError(
                f"got {len(bindings_list)} binding sets for "
                f"{self.array.batch} lanes"
            )
        stats_list: List[RunStats] = []
        for lane, bindings in zip(self.array.lanes, bindings_list):
            executor = MagicExecutor(
                lane,
                clock=Clock(),
                trace=self.trace,
                fault_hook=self.fault_hook,
            )
            stats_list.append(executor.execute(compiled.program, bindings))
        for opcode, cycles in compiled.cycles_by_opcode.items():
            self.clock.tick(cycles, category=opcode)
        return stats_list


class ScalarBackend(ExecutorBackend):
    """Per-lane scalar replay — the bit-exact differential oracle."""

    name = "scalar"

    def make_array(self, template: CrossbarArray, batch: int) -> ScalarLaneArray:
        return ScalarLaneArray.from_scalar(template, batch)

    def make_executor(self, array, clock=None, trace=None, fault_hook=None):
        return ScalarLaneExecutor(
            array, clock=clock, trace=trace, fault_hook=fault_hook
        )


class BitPlaneBackend(ExecutorBackend):
    """Bool-tensor SIMD replay (one byte per logical bit)."""

    name = "bitplane"

    def make_array(
        self, template: CrossbarArray, batch: int
    ) -> BatchedCrossbarArray:
        return BatchedCrossbarArray.from_scalar(template, batch)

    def make_executor(self, array, clock=None, trace=None, fault_hook=None):
        return BatchedMagicExecutor(
            array, clock=clock, trace=trace, fault_hook=fault_hook
        )


class WordPackedBackend(ExecutorBackend):
    """Big-integer SIMD replay packing 64 lanes per machine word."""

    name = "word"

    def make_array(
        self, template: CrossbarArray, batch: int
    ) -> WordPackedCrossbarArray:
        return WordPackedCrossbarArray.from_scalar(template, batch)

    def make_executor(self, array, clock=None, trace=None, fault_hook=None):
        return WordPackedMagicExecutor(
            array, clock=clock, trace=trace, fault_hook=fault_hook
        )


#: Registry of selectable backends (aliases included).
BACKENDS: Dict[str, ExecutorBackend] = {}
for _backend in (ScalarBackend(), BitPlaneBackend(), WordPackedBackend()):
    BACKENDS[_backend.name] = _backend
BACKENDS["bit-plane"] = BACKENDS["bitplane"]
BACKENDS["word-packed"] = BACKENDS["word"]

#: Names accepted by configuration surfaces (canonical spellings only).
BACKEND_NAMES = ("scalar", "bitplane", "word")


def backend_name(spec) -> str:
    """Canonical name of a backend spec, aliases normalised.

    Design-point keys and compiled-program cache variants embed this
    so alias spellings (``"word-packed"`` vs ``"word"``) can never
    mint distinct cache entries for the same backend.
    """
    return get_backend(spec).name


def get_backend(spec) -> ExecutorBackend:
    """Resolve *spec* — a registry name or backend instance — to a backend.

    Accepts canonical names (``"scalar"``, ``"bitplane"``, ``"word"``),
    the aliases ``"bit-plane"`` / ``"word-packed"``, or an
    :class:`ExecutorBackend` instance (returned as-is).
    """
    if isinstance(spec, ExecutorBackend):
        return spec
    if isinstance(spec, str):
        backend = BACKENDS.get(spec.lower())
        if backend is not None:
            return backend
        raise ValueError(
            f"unknown executor backend {spec!r}; "
            f"choose from {sorted(set(BACKENDS))}"
        )
    raise TypeError(
        f"backend must be a name or ExecutorBackend, got {type(spec).__name__}"
    )
