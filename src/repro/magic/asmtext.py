"""Text (assembly) format for MAGIC programs.

A simple line-oriented serialisation so programs can be dumped,
diffed, hand-edited, and reloaded:

    ; koggestone-add-16b
    init  r3,r4,r5 [0:17]
    nor   r0,r1 -> r3 [0:17]
    not   r3 -> r4 [0:17]
    write r0 <- x [0+16]
    read  r2 -> out [0+17]
    shift r5 -> r6 by 2 fill 1 [0:17] init r7,r8
    nop   3

Columns: ``[start:stop]`` is the half-open window; ``[off+width]`` the
field of a WRITE/READ.  :func:`dumps`/:func:`loads` round-trip every
program the generators produce.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.magic.ops import (
    Init,
    MicroOp,
    Nop,
    Nor,
    Not,
    ParallelNor,
    ParallelNot,
    Read,
    Shift,
    Write,
)
from repro.magic.program import Program
from repro.sim.exceptions import ProgramError


def _cols_text(cols: Optional[Tuple[int, int]]) -> str:
    return f" [{cols[0]}:{cols[1]}]" if cols is not None else ""


def _rows_text(rows) -> str:
    return ",".join(f"r{r}" for r in rows)


def dumps(program: Program) -> str:
    """Serialise *program* to assembly text."""
    lines: List[str] = []
    if program.label:
        lines.append(f"; {program.label}")
    for op in program.ops:
        if isinstance(op, Init):
            lines.append(f"init  {_rows_text(op.rows)}{_cols_text(op.cols)}")
        elif isinstance(op, Nor):
            lines.append(
                f"nor   {_rows_text(op.in_rows)} -> r{op.out_row}"
                f"{_cols_text(op.cols)}"
            )
        elif isinstance(op, Not):
            lines.append(
                f"not   r{op.in_row} -> r{op.out_row}{_cols_text(op.cols)}"
            )
        elif isinstance(op, Write):
            width = "" if op.width is None else str(op.width)
            lines.append(
                f"write r{op.row} <- {op.name} [{op.col_offset}+{width}]"
            )
        elif isinstance(op, Read):
            width = "" if op.width is None else str(op.width)
            lines.append(
                f"read  r{op.row} -> {op.name} [{op.col_offset}+{width}]"
            )
        elif isinstance(op, Shift):
            init_part = (
                f" init {_rows_text(op.also_init)}" if op.also_init else ""
            )
            lines.append(
                f"shift r{op.src_row} -> r{op.dst_row} by {op.offset} "
                f"fill {op.fill}{_cols_text(op.cols)}{init_part}"
            )
        elif isinstance(op, ParallelNor):
            gates = " | ".join(
                f"{_rows_text(g.in_rows)} -> r{g.out_row}{_cols_text(g.cols)}"
                for g in op.gates
            )
            lines.append(f"pnor  {gates}")
        elif isinstance(op, ParallelNot):
            gates = " | ".join(
                f"r{g.in_row} -> r{g.out_row}{_cols_text(g.cols)}"
                for g in op.gates
            )
            lines.append(f"pnot  {gates}")
        elif isinstance(op, Nop):
            lines.append(f"nop   {op.count}")
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unserialisable op {op!r}")
    return "\n".join(lines) + "\n"


_COLS_RE = re.compile(r"\[(\d+):(\d+)\]")
_FIELD_RE = re.compile(r"\[(\d+)\+(\d*)\]")


def _parse_rows(text: str) -> Tuple[int, ...]:
    rows = []
    for token in text.split(","):
        token = token.strip()
        if not token.startswith("r"):
            raise ProgramError(f"bad row token {token!r}")
        rows.append(int(token[1:]))
    return tuple(rows)


def _parse_cols(line: str) -> Optional[Tuple[int, int]]:
    match = _COLS_RE.search(line)
    return (int(match.group(1)), int(match.group(2))) if match else None


def loads(text: str) -> Program:
    """Parse assembly text back into a :class:`Program`."""
    ops: List[MicroOp] = []
    label = ""
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            if not label:
                label = line[1:].strip()
            continue
        mnemonic, _, rest = line.partition(" ")
        rest = rest.strip()
        cols = _parse_cols(rest)
        body = _COLS_RE.sub("", rest).strip()
        if mnemonic == "init":
            ops.append(Init(rows=_parse_rows(body), cols=cols))
        elif mnemonic == "nor":
            inputs, _, target = body.partition("->")
            ops.append(
                Nor(
                    in_rows=_parse_rows(inputs.strip()),
                    out_row=_parse_rows(target.strip())[0],
                    cols=cols,
                )
            )
        elif mnemonic == "not":
            source, _, target = body.partition("->")
            ops.append(
                Not(
                    in_row=_parse_rows(source.strip())[0],
                    out_row=_parse_rows(target.strip())[0],
                    cols=cols,
                )
            )
        elif mnemonic in ("write", "read"):
            field = _FIELD_RE.search(rest)
            if not field:
                raise ProgramError(f"missing field spec in {line!r}")
            offset = int(field.group(1))
            width = int(field.group(2)) if field.group(2) else None
            body_nofield = _FIELD_RE.sub("", body).strip()
            if mnemonic == "write":
                row_part, _, name = body_nofield.partition("<-")
            else:
                row_part, _, name = body_nofield.partition("->")
            ops.append(
                (Write if mnemonic == "write" else Read)(
                    row=_parse_rows(row_part.strip())[0],
                    name=name.strip(),
                    col_offset=offset,
                    width=width,
                )
            )
        elif mnemonic == "shift":
            match = re.match(
                r"r(\d+)\s*->\s*r(\d+)\s+by\s+(-?\d+)\s+fill\s+(\d)"
                r"(?:\s+init\s+(.*))?$",
                body,
            )
            if not match:
                raise ProgramError(f"bad shift syntax: {line!r}")
            also = (
                _parse_rows(match.group(5)) if match.group(5) else ()
            )
            ops.append(
                Shift(
                    src_row=int(match.group(1)),
                    dst_row=int(match.group(2)),
                    offset=int(match.group(3)),
                    fill=int(match.group(4)),
                    cols=cols,
                    also_init=also,
                )
            )
        elif mnemonic in ("pnor", "pnot"):
            gates = []
            for segment in rest.split("|"):
                segment = segment.strip()
                seg_cols = _parse_cols(segment)
                seg_body = _COLS_RE.sub("", segment).strip()
                inputs, _, target = seg_body.partition("->")
                in_rows = _parse_rows(inputs.strip())
                out_row = _parse_rows(target.strip())[0]
                if mnemonic == "pnor":
                    gates.append(
                        Nor(in_rows=in_rows, out_row=out_row, cols=seg_cols)
                    )
                else:
                    gates.append(
                        Not(in_row=in_rows[0], out_row=out_row, cols=seg_cols)
                    )
            ops.append(
                (ParallelNor if mnemonic == "pnor" else ParallelNot)(
                    gates=tuple(gates)
                )
            )
        elif mnemonic == "nop":
            ops.append(Nop(count=int(body)))
        else:
            raise ProgramError(f"unknown mnemonic {mnemonic!r}")
    return Program(ops=ops, label=label)
