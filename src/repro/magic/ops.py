"""Micro-operation instruction set for MAGIC crossbar programs.

A CIM *program* is a flat sequence of micro-ops executed by
:class:`repro.magic.executor.MagicExecutor` against one crossbar array.
The set mirrors what the paper's controller can issue:

========  ===========================================================  ======
opcode    semantics                                                    cycles
========  ===========================================================  ======
INIT      drive one or more word lines to set all (masked) cells to 1      1
NOR       row-parallel MAGIC NOR of input rows into an output row          1
NOT       single-input NOR (MAGIC NOT)                                     1
WRITE     program one word from the periphery                              1
READ      sense one word into a named result                               1
SHIFT     read a row, shift it in the periphery, write it back             2
NOP       idle cycles (controller overhead)                             n>=1
========  ===========================================================  ======

A SHIFT may carry ``also_init``: rows initialised to logic one during
the shift's write cycle.  The word-line driver can drive multiple rows
simultaneously while the write circuit programs the shifted word, so
this costs no extra cycles — the same convention the paper uses to fit
each Kogge-Stone level in 11 cc (2x2 cc shifts + 7 cc NOR/NOT).

Column masks are half-open ranges ``(start, stop)``; ``None`` means the
whole row.  All operand fields in the paper's layouts are contiguous,
so ranges are sufficient and keep programs hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.exceptions import ProgramError

ColumnRange = Optional[Tuple[int, int]]


def _check_cols(cols: ColumnRange, width: int) -> None:
    if cols is None:
        return
    start, stop = cols
    if not (0 <= start < stop <= width):
        raise ProgramError(f"column range {cols} outside array width {width}")


def _check_row(row: int, height: int) -> None:
    if not 0 <= row < height:
        raise ProgramError(f"row {row} outside array height {height}")


def _check_field(col_offset: int, width: Optional[int], cols: int) -> None:
    if width is None:
        width = cols - col_offset
    if col_offset < 0 or col_offset + width > cols:
        raise ProgramError(
            f"field [{col_offset}, {col_offset + width}) outside array"
        )


@dataclass(frozen=True)
class MicroOp:
    """Base class for all micro-ops."""

    @property
    def opcode(self) -> str:
        return type(self).__name__.lower()

    @property
    def cycles(self) -> int:
        return 1

    def validate(self, rows: int, cols: int) -> None:
        """Raise :class:`ProgramError` if the op cannot run on a
        *rows* x *cols* array.  Used by program compilation so geometry
        errors surface once, before any replay."""


@dataclass(frozen=True)
class Init(MicroOp):
    """Initialise cells in *rows* (within *cols*) to logic one, 1 cc."""

    rows: Tuple[int, ...]
    cols: ColumnRange = None

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("INIT requires at least one row")

    def validate(self, rows: int, cols: int) -> None:
        for row in self.rows:
            _check_row(row, rows)
        _check_cols(self.cols, cols)


@dataclass(frozen=True)
class Nor(MicroOp):
    """Row-parallel MAGIC NOR: ``out_row <- NOR(in_rows)``, 1 cc."""

    in_rows: Tuple[int, ...]
    out_row: int
    cols: ColumnRange = None

    def __post_init__(self) -> None:
        if not self.in_rows:
            raise ValueError("NOR requires at least one input row")

    def validate(self, rows: int, cols: int) -> None:
        for row in self.in_rows:
            _check_row(row, rows)
        _check_row(self.out_row, rows)
        _check_cols(self.cols, cols)


@dataclass(frozen=True)
class Not(MicroOp):
    """MAGIC NOT: ``out_row <- NOT(in_row)``, 1 cc."""

    in_row: int
    out_row: int
    cols: ColumnRange = None

    def validate(self, rows: int, cols: int) -> None:
        _check_row(self.in_row, rows)
        _check_row(self.out_row, rows)
        _check_cols(self.cols, cols)


@dataclass(frozen=True)
class Write(MicroOp):
    """Program one word from the periphery, 1 cc.

    The data is looked up in the executor's *bindings* by *name*; the
    word is placed LSB-first starting at column ``col_offset`` over
    ``width`` columns.
    """

    row: int
    name: str
    col_offset: int = 0
    width: Optional[int] = None

    def validate(self, rows: int, cols: int) -> None:
        _check_row(self.row, rows)
        _check_field(self.col_offset, self.width, cols)


@dataclass(frozen=True)
class Read(MicroOp):
    """Sense one word into the executor's *results* under *name*, 1 cc."""

    row: int
    name: str
    col_offset: int = 0
    width: Optional[int] = None

    def validate(self, rows: int, cols: int) -> None:
        _check_row(self.row, rows)
        _check_field(self.col_offset, self.width, cols)


@dataclass(frozen=True)
class Shift(MicroOp):
    """Read *src_row*, shift by *offset* columns in the periphery, and
    write it to *dst_row*; 2 cc (one read + one write).

    Positive *offset* moves bits towards higher column indices (a
    left shift in LSB-first layout, i.e. multiplication by 2^offset).
    Vacated positions are filled with *fill*.  Rows listed in
    ``also_init`` are initialised to one during the write cycle.
    """

    src_row: int
    dst_row: int
    offset: int
    fill: int = 0
    cols: ColumnRange = None
    also_init: Tuple[int, ...] = field(default=())

    @property
    def cycles(self) -> int:
        return 2

    def validate(self, rows: int, cols: int) -> None:
        _check_row(self.src_row, rows)
        _check_row(self.dst_row, rows)
        for row in self.also_init:
            _check_row(row, rows)
        _check_cols(self.cols, cols)


def _check_pack(gates: Tuple, opcode: str) -> None:
    """Single-cycle legality of a gate pack.

    All output word lines must be pairwise distinct and exclusively
    owned: no gate's output row may appear among any gate's input rows
    (including its own).  Input rows *may* be shared — the word-line
    drivers hold input rows at read voltage, so several concurrent
    gates can fan out from the same row, but each output row sinks
    exactly one gate's result.
    """
    if not gates:
        raise ValueError(f"parallel {opcode.upper()} requires at least one gate")
    outs = [g.out_row for g in gates]
    if len(set(outs)) != len(outs):
        raise ProgramError(
            f"parallel {opcode.upper()} gates share an output row: {outs}"
        )
    reads = set()
    for g in gates:
        reads.update(g.in_rows if hasattr(g, "in_rows") else (g.in_row,))
    clash = reads & set(outs)
    if clash:
        raise ProgramError(
            f"parallel {opcode.upper()} output rows {sorted(clash)} "
            "collide with pack input rows"
        )


@dataclass(frozen=True)
class ParallelNor(MicroOp):
    """SIMD pack of independent NOR gates issued in one cycle.

    The crossbar substrate is row-parallel: gates on disjoint output
    word lines whose operands do not overlap any pack output can fire
    simultaneously (paper Sec. II-B).  Packs are produced by the cycle
    packer in :mod:`repro.magic.passes`; legality is re-checked here so
    a hand-built pack cannot silently break the single-cycle claim.
    """

    gates: Tuple[Nor, ...]

    def __post_init__(self) -> None:
        for g in self.gates:
            if not isinstance(g, Nor):
                raise ProgramError(f"ParallelNor holds {type(g).__name__}")
        _check_pack(self.gates, "nor")

    @property
    def opcode(self) -> str:
        # Clock category stays "nor": a pack spends one NOR cycle.
        return "nor"

    def validate(self, rows: int, cols: int) -> None:
        for g in self.gates:
            g.validate(rows, cols)


@dataclass(frozen=True)
class ParallelNot(MicroOp):
    """SIMD pack of independent NOT gates issued in one cycle."""

    gates: Tuple[Not, ...]

    def __post_init__(self) -> None:
        for g in self.gates:
            if not isinstance(g, Not):
                raise ProgramError(f"ParallelNot holds {type(g).__name__}")
        _check_pack(self.gates, "not")

    @property
    def opcode(self) -> str:
        return "not"

    def validate(self, rows: int, cols: int) -> None:
        for g in self.gates:
            g.validate(rows, cols)


@dataclass(frozen=True)
class Nop(MicroOp):
    """Idle controller cycles."""

    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("NOP must cover at least one cycle")

    @property
    def cycles(self) -> int:
        return self.count
