"""NOR-only synthesis macros for common boolean blocks.

MAGIC natively provides only NOR and NOT (Sec. II-B), but NOR is
functionally complete; these macros emit the canonical NOR/NOT
decompositions used throughout the paper's arithmetic:

=========  ==================================================  =========
block      decomposition                                        ops (cc)
=========  ==================================================  =========
AND        ``NOR(NOT a, NOT b)``                                       3
OR         ``NOT(NOR(a, b))``                                          2
XNOR       ``NOR(NOR(a,t), NOR(b,t))`` with ``t = NOR(a,b)``           4
XOR        ``NOT(XNOR(a, b))``                                         5
MAJ3       ``OR(AND(a,b), AND(c, OR(a,b)))`` in NOR form               9
=========  ==================================================  =========

Note the asymmetry: with ``t = NOR(a, b)``, ``NOR(a, t) = ~a AND b``
and ``NOR(b, t) = a AND ~b``, so ``NOR`` of those two is the *negated*
disjunction — XNOR.  XOR therefore costs one extra NOT.

Each macro appends micro-ops to a :class:`ProgramBuilder`; scratch rows
are supplied by the caller and must be initialised to logic one (the
macros do *not* emit INITs so that callers can batch initialisation,
exactly as the paper batches it into shift cycles).
"""

from __future__ import annotations

from typing import Sequence

from repro.magic.ops import ColumnRange
from repro.magic.program import ProgramBuilder
from repro.sim.exceptions import ProgramError


def _need(scratch: Sequence[int], count: int, block: str) -> None:
    if len(scratch) < count:
        raise ProgramError(f"{block} needs {count} scratch rows, got {len(scratch)}")


def emit_and(
    builder: ProgramBuilder,
    a_row: int,
    b_row: int,
    out_row: int,
    scratch: Sequence[int],
    cols: ColumnRange = None,
) -> ProgramBuilder:
    """``out = a AND b`` in 3 ops; needs 2 scratch rows."""
    _need(scratch, 2, "AND")
    na, nb = scratch[0], scratch[1]
    builder.not_(a_row, na, cols)
    builder.not_(b_row, nb, cols)
    builder.nor([na, nb], out_row, cols)
    return builder


def emit_or(
    builder: ProgramBuilder,
    a_row: int,
    b_row: int,
    out_row: int,
    scratch: Sequence[int],
    cols: ColumnRange = None,
) -> ProgramBuilder:
    """``out = a OR b`` in 2 ops; needs 1 scratch row."""
    _need(scratch, 1, "OR")
    t = scratch[0]
    builder.nor([a_row, b_row], t, cols)
    builder.not_(t, out_row, cols)
    return builder


def emit_xnor(
    builder: ProgramBuilder,
    a_row: int,
    b_row: int,
    out_row: int,
    scratch: Sequence[int],
    cols: ColumnRange = None,
) -> ProgramBuilder:
    """``out = NOT(a XOR b)`` in 4 ops; needs 3 scratch rows.

    Uses the shared-NOR form: with ``t = NOR(a, b)``,
    ``NOR(a, t) = ~a AND b`` and ``NOR(b, t) = a AND ~b``, so
    ``NOR`` of those two is exactly XNOR.
    """
    _need(scratch, 3, "XNOR")
    t, u, v = scratch[0], scratch[1], scratch[2]
    builder.nor([a_row, b_row], t, cols)
    builder.nor([a_row, t], u, cols)
    builder.nor([b_row, t], v, cols)
    builder.nor([u, v], out_row, cols)
    return builder


def emit_xor(
    builder: ProgramBuilder,
    a_row: int,
    b_row: int,
    out_row: int,
    scratch: Sequence[int],
    cols: ColumnRange = None,
) -> ProgramBuilder:
    """``out = a XOR b`` in 5 ops; needs 4 scratch rows."""
    _need(scratch, 4, "XOR")
    emit_xnor(builder, a_row, b_row, scratch[3], scratch[:3], cols)
    builder.not_(scratch[3], out_row, cols)
    return builder


def emit_maj3(
    builder: ProgramBuilder,
    a_row: int,
    b_row: int,
    c_row: int,
    out_row: int,
    scratch: Sequence[int],
    cols: ColumnRange = None,
) -> ProgramBuilder:
    """``out = MAJ(a, b, c)`` in 9 ops; needs 6 scratch rows.

    ``MAJ = (a AND b) OR (c AND (a OR b))``; used to cross-check the
    MAJORITY-gate baseline against a pure-NOR implementation.
    """
    _need(scratch, 6, "MAJ3")
    na, nb, ab, or_ab, nor_ab, t = scratch[:6]
    builder.not_(a_row, na, cols)
    builder.not_(b_row, nb, cols)
    builder.nor([na, nb], ab, cols)          # a AND b
    builder.nor([a_row, b_row], nor_ab, cols)
    # c AND (a OR b) = NOR(NOT c, NOR(a, b)); reuse na as NOT c.
    builder.init([na], cols)
    builder.not_(c_row, na, cols)
    builder.nor([na, nor_ab], or_ab, cols)   # c AND (a OR b)
    builder.nor([ab, or_ab], t, cols)
    builder.not_(t, out_row, cols)
    return builder
