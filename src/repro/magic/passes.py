"""Pass-manager-driven SIMD cycle-packing optimizer for MAGIC programs.

The executors charge one cycle per micro-op even when many NOR/NOT/INIT
ops are mutually independent — yet the substrate is row-parallel SIMD
(paper Sec. II-B): gates whose output word lines are disjoint and do
not overlap any concurrent operand row can legally share a cycle, the
same observation parallelism-aware technology mappers for memristive
crossbars exploit (CONTRA, arXiv:2009.00881; crossbar-constrained
mapping, arXiv:1809.08195).  This module turns that slack into cycles:

1. :func:`dependence_dag` — read/write dependence DAG over a program
   (RAW, WAR, WAW on rows, plus READ-name serialisation and NOP
   barriers), built from the same :func:`~repro.magic.optimize.effect_of`
   row model the liveness analysis uses;
2. :func:`pack_cycles` — a deterministic list scheduler over that DAG
   that packs ready same-opcode gates into
   :class:`~repro.magic.ops.ParallelNor` / :class:`ParallelNot` packs
   and merges ready INITs into one multi-row cycle;
3. :func:`reallocate_scratch` — liveness-driven linear-scan remapping
   of a scratch-row pool, shrinking the row footprint of generated
   programs;
4. :class:`PassManager` — runs a pass pipeline and re-verifies the
   result with :func:`~repro.magic.optimize.check_protocol`, so packing
   can never break the MAGIC init discipline, and refuses any pass that
   increases the cycle count.

Packing legality (one cycle, one pack): output rows pairwise distinct
and disjoint from every operand row of the pack.  Operand rows may be
shared between gates — input word lines are voltage-driven and fan out,
while each output word line is exclusively owned by one gate.  Ready
ops of a list scheduler are mutually independent by construction, and
emission order is a topological order of the DAG, so row dataflow is
preserved exactly; the property-based equivalence suite holds the
optimizer to bit-exact results on both executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.magic.optimize import check_protocol, coalesce_inits, effect_of
from repro.magic.ops import (
    Init,
    MicroOp,
    Nop,
    Nor,
    Not,
    ParallelNor,
    ParallelNot,
    Read,
    Shift,
    Write,
)
from repro.magic.program import Program
from repro.sim.exceptions import ProgramError

__all__ = [
    "dependence_dag",
    "drop_nops",
    "pack_cycles",
    "reallocate_scratch",
    "PassStats",
    "OptimizationResult",
    "PassManager",
    "optimize_program",
    "summarize_reports",
]


# ----------------------------------------------------------------------
# Dependence DAG
# ----------------------------------------------------------------------
def dependence_dag(
    program: Program,
) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Build the dependence DAG of *program*.

    Returns ``(preds, succs)``: for each op index, the set of earlier /
    later op indices it is ordered against.  Edges cover row dataflow
    (RAW, WAR, WAW — conservative across the whole row, like every
    static check in :mod:`repro.magic.optimize`), READ ops sharing a
    result name (the later read wins, so their order is semantic), and
    NOPs, which act as full barriers (they encode controller alignment
    the scheduler must not reorder across when asked to keep them).
    """
    ops = program.ops
    n = len(ops)
    preds: List[Set[int]] = [set() for _ in range(n)]
    last_writer: Dict[int, int] = {}
    readers_since: Dict[int, List[int]] = {}
    last_read_name: Dict[str, int] = {}
    barrier: Optional[int] = None
    for i, op in enumerate(ops):
        if isinstance(op, Nop):
            preds[i].update(range(i))
            barrier = i
            continue
        if barrier is not None:
            preds[i].add(barrier)
        eff = effect_of(op)
        for row in eff.reads:
            j = last_writer.get(row)
            if j is not None:
                preds[i].add(j)
        for row in eff.writes:
            j = last_writer.get(row)
            if j is not None:
                preds[i].add(j)
            preds[i].update(readers_since.get(row, ()))
        if isinstance(op, Read):
            j = last_read_name.get(op.name)
            if j is not None:
                preds[i].add(j)
            last_read_name[op.name] = i
        for row in eff.reads:
            readers_since.setdefault(row, []).append(i)
        for row in eff.writes:
            last_writer[row] = i
            readers_since[row] = []
        preds[i].discard(i)
    succs: List[Set[int]] = [set() for _ in range(n)]
    for i, pset in enumerate(preds):
        for j in pset:
            succs[j].add(i)
    return preds, succs


def drop_nops(program: Program) -> Program:
    """Remove controller-alignment NOPs (pure idle cycles)."""
    kept = [op for op in program.ops if not isinstance(op, Nop)]
    return Program(ops=kept, label=program.label)


# ----------------------------------------------------------------------
# Cycle packing (list scheduling)
# ----------------------------------------------------------------------
def _gate_reads(gate) -> Set[int]:
    return set(gate.in_rows) if isinstance(gate, Nor) else {gate.in_row}


def pack_cycles(
    program: Program,
    max_pack: Optional[int] = None,
) -> Program:
    """List-schedule *program*, packing independent same-opcode ops.

    Ready NOR (resp. NOT) gates whose output rows are pairwise distinct
    and disjoint from every operand row of the pack fuse into one
    :class:`ParallelNor` (:class:`ParallelNot`) issued in a single
    cycle; ready INITs with the same column window merge into one
    multi-row INIT.  Everything else is emitted singly.  The emission
    order is a topological order of :func:`dependence_dag`, ties broken
    by original index, so the result is deterministic and semantically
    identical to the input.

    *max_pack* caps gates per pack (``None`` = unlimited, the paper's
    row-parallel idealisation; real drivers may bound simultaneous
    output word lines).
    """
    ops = program.ops
    preds, succs = dependence_dag(program)
    indeg = [len(p) for p in preds]
    ready: Set[int] = {i for i, d in enumerate(indeg) if d == 0}
    out: List[MicroOp] = []
    scheduled = 0
    while ready:
        i = min(ready)
        op = ops[i]
        group = [i]
        if isinstance(op, (Nor, Not)) and op.out_row not in _gate_reads(op):
            kind = Nor if isinstance(op, Nor) else Not
            gates: List[MicroOp] = [op]
            outs = {op.out_row}
            reads = _gate_reads(op)
            for j in sorted(ready):
                if j == i or (max_pack is not None and len(gates) >= max_pack):
                    continue
                cand = ops[j]
                if not isinstance(cand, kind):
                    continue
                c_reads = _gate_reads(cand)
                if (
                    cand.out_row in outs
                    or cand.out_row in reads
                    or cand.out_row in c_reads
                    or c_reads & outs
                ):
                    continue
                gates.append(cand)
                outs.add(cand.out_row)
                reads |= c_reads
                group.append(j)
            if len(gates) > 1:
                pack_cls = ParallelNor if kind is Nor else ParallelNot
                out.append(pack_cls(gates=tuple(gates)))
            else:
                out.append(op)
        elif isinstance(op, Init):
            rows = list(op.rows)
            for j in sorted(ready):
                if j == i:
                    continue
                cand = ops[j]
                if isinstance(cand, Init) and cand.cols == op.cols:
                    rows.extend(cand.rows)
                    group.append(j)
            if len(group) > 1:
                out.append(Init(rows=tuple(dict.fromkeys(rows)), cols=op.cols))
            else:
                out.append(op)
        else:
            out.append(op)
        for member in group:
            ready.discard(member)
            scheduled += 1
            for succ in succs[member]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.add(succ)
    if scheduled != len(ops):  # pragma: no cover - scheduler invariant
        raise ProgramError(
            f"cycle packer scheduled {scheduled} of {len(ops)} ops "
            "(dependence cycle?)"
        )
    return Program(ops=out, label=program.label)


# ----------------------------------------------------------------------
# Scratch-row reallocation
# ----------------------------------------------------------------------
def _remap_rows(op: MicroOp, mapping: Dict[int, int]) -> MicroOp:
    """Rebuild *op* with every row reference sent through *mapping*."""

    def m(row: int) -> int:
        return mapping.get(row, row)

    if isinstance(op, Init):
        return Init(rows=tuple(m(r) for r in op.rows), cols=op.cols)
    if isinstance(op, Nor):
        return Nor(
            in_rows=tuple(m(r) for r in op.in_rows),
            out_row=m(op.out_row),
            cols=op.cols,
        )
    if isinstance(op, Not):
        return Not(in_row=m(op.in_row), out_row=m(op.out_row), cols=op.cols)
    if isinstance(op, ParallelNor):
        return ParallelNor(
            gates=tuple(_remap_rows(g, mapping) for g in op.gates)
        )
    if isinstance(op, ParallelNot):
        return ParallelNot(
            gates=tuple(_remap_rows(g, mapping) for g in op.gates)
        )
    if isinstance(op, Write):
        return Write(
            row=m(op.row),
            name=op.name,
            col_offset=op.col_offset,
            width=op.width,
        )
    if isinstance(op, Read):
        return Read(
            row=m(op.row),
            name=op.name,
            col_offset=op.col_offset,
            width=op.width,
        )
    if isinstance(op, Shift):
        return Shift(
            src_row=m(op.src_row),
            dst_row=m(op.dst_row),
            offset=op.offset,
            fill=op.fill,
            cols=op.cols,
            also_init=tuple(m(r) for r in op.also_init),
        )
    return op


def reallocate_scratch(
    program: Program, pool: Sequence[int]
) -> Tuple[Program, Dict[int, int]]:
    """Compact the program's use of *pool* rows by linear-scan renaming.

    Rows in *pool* are treated as interchangeable scratch: each row's
    lifetime (first to last reference) is computed and rows are
    reassigned greedily in pool order, so non-overlapping lifetimes
    share one physical row and the program's scratch footprint shrinks
    to the peak number of simultaneously-live intermediates.  Rows
    outside the pool are untouched.

    Correctness contract: the pool must be *state-uniform* when the
    program starts (the stage discipline — every pass leaves the whole
    scratch region at logic one), because a row read before its first
    write observes the initial state of its *new* position.  Returns
    the remapped program and the applied ``old row -> new row`` map.
    """
    pool = list(pool)
    pool_set = set(pool)
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    for index, op in enumerate(program.ops):
        eff = effect_of(op)
        for row in set(eff.reads) | set(eff.writes):
            if row in pool_set:
                first.setdefault(row, index)
                last[row] = index
    free = list(pool)
    active: List[Tuple[int, int]] = []  # (last_ref, old_row)
    mapping: Dict[int, int] = {}
    for old in sorted(first, key=first.get):
        begin = first[old]
        for end, done in list(active):
            if end < begin:
                active.remove((end, done))
                free.insert(0, mapping[done])
                free.sort(key=pool.index)
        mapping[old] = free.pop(0)
        active.append((last[old], old))
    remapped = [_remap_rows(op, mapping) for op in program.ops]
    return Program(ops=remapped, label=program.label), mapping


# ----------------------------------------------------------------------
# Pass manager
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PassStats:
    """Before/after accounting of one optimizer pass."""

    name: str
    ops_before: int
    ops_after: int
    cycles_before: int
    cycles_after: int

    @property
    def cycles_saved(self) -> int:
        return self.cycles_before - self.cycles_after


@dataclass(frozen=True)
class OptimizationResult:
    """Optimized program plus the full pass-by-pass report."""

    program: Program
    passes: Tuple[PassStats, ...]
    cycles_before: int
    cycles_after: int
    rows_before: int
    rows_after: int

    @property
    def cycles_saved(self) -> int:
        return self.cycles_before - self.cycles_after

    @property
    def pack_factor(self) -> float:
        """Average micro-ops retired per issued cycle after packing
        (1.0 = no packing; > 1 means SIMD cycles carry several gates)."""
        gates = 0
        for op in self.program.ops:
            gates += len(op.gates) if isinstance(op, (ParallelNor, ParallelNot)) else 1
        return gates / self.cycles_after if self.cycles_after else 1.0


def summarize_reports(
    reports: Sequence[OptimizationResult],
) -> Dict[str, object]:
    """Aggregate optimizer reports (e.g. one per stage program) into
    the pack-factor stats the service metrics snapshot exposes."""
    before = sum(r.cycles_before for r in reports)
    after = sum(r.cycles_after for r in reports)
    gates = 0
    for r in reports:
        for op in r.program.ops:
            gates += (
                len(op.gates)
                if isinstance(op, (ParallelNor, ParallelNot))
                else 1
            )
    by_pass: Dict[str, int] = {}
    for r in reports:
        for p in r.passes:
            by_pass[p.name] = by_pass.get(p.name, 0) + p.cycles_saved
    return {
        "enabled": True,
        "cycles_before": before,
        "cycles_after": after,
        "cycles_saved": before - after,
        # Raw numerator of the pack factor.  Fleet-wide aggregation
        # must sum ``gates`` and ``cycles_after`` across stages and
        # recompute the ratio — averaging or re-weighting the per-stage
        # ``pack_factor`` floats mis-weights stages and loses gates
        # whenever a stage reports the ``cycles_after == 0`` convention.
        "gates": gates,
        "pack_factor": gates / after if after else 1.0,
        "by_pass": by_pass,
    }


#: A pass: Program -> Program.
Pass = Callable[[Program], Program]


class PassManager:
    """Runs an ordered pass pipeline with per-pass verification.

    After every pass the manager re-checks the MAGIC init discipline
    (:func:`check_protocol` under *initially_ones*) — provided the
    input program satisfied it — and rejects any pass that increased
    the cycle count.  A failing pass raises :class:`ProgramError`
    rather than silently emitting a broken or slower program.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Tuple[str, Pass]]] = None,
        initially_ones: FrozenSet[int] = frozenset(),
        scratch_pool: Optional[Sequence[int]] = None,
        keep_nops: bool = False,
        max_pack: Optional[int] = None,
    ):
        self.initially_ones = set(initially_ones)
        if scratch_pool is not None:
            self.initially_ones |= set(scratch_pool)
        if passes is None:
            stages: List[Tuple[str, Pass]] = []
            if not keep_nops:
                stages.append(("drop-nops", drop_nops))
            stages.append(("coalesce-inits", coalesce_inits))
            stages.append(
                ("pack-cycles", lambda p: pack_cycles(p, max_pack=max_pack))
            )
            if scratch_pool is not None:
                pool = list(scratch_pool)
                stages.append(
                    ("reallocate-scratch", lambda p: reallocate_scratch(p, pool)[0])
                )
            passes = stages
        self.passes = list(passes)

    def run(self, program: Program) -> OptimizationResult:
        baseline_ok = check_protocol(program, self.initially_ones).ok
        current = program
        stats: List[PassStats] = []
        for name, fn in self.passes:
            before_ops, before_cc = len(current.ops), current.cycle_count
            candidate = fn(current)
            if candidate.cycle_count > before_cc:
                raise ProgramError(
                    f"pass {name!r} increased cycles: "
                    f"{before_cc} -> {candidate.cycle_count}"
                )
            if baseline_ok:
                report = check_protocol(candidate, self.initially_ones)
                if not report.ok:
                    raise ProgramError(
                        f"pass {name!r} broke the MAGIC init discipline: "
                        f"{report.violations[:2]}"
                    )
            stats.append(
                PassStats(
                    name=name,
                    ops_before=before_ops,
                    ops_after=len(candidate.ops),
                    cycles_before=before_cc,
                    cycles_after=candidate.cycle_count,
                )
            )
            current = candidate
        current = Program(
            ops=list(current.ops),
            label=(program.label + "+opt") if program.label else "optimized",
        )
        current.seal()
        return OptimizationResult(
            program=current,
            passes=tuple(stats),
            cycles_before=program.cycle_count,
            cycles_after=current.cycle_count,
            rows_before=len(program.rows_touched()),
            rows_after=len(current.rows_touched()),
        )


def optimize_program(
    program: Program,
    initially_ones: FrozenSet[int] = frozenset(),
    scratch_pool: Optional[Sequence[int]] = None,
    keep_nops: bool = False,
    max_pack: Optional[int] = None,
) -> OptimizationResult:
    """One-call default pipeline: drop NOPs, coalesce INITs, pack
    cycles (and compact *scratch_pool* rows when given), verified."""
    manager = PassManager(
        initially_ones=initially_ones,
        scratch_pool=scratch_pool,
        keep_nops=keep_nops,
        max_pack=max_pack,
    )
    return manager.run(program)
