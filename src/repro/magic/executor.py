"""Cycle-accurate executor for MAGIC programs on a crossbar array.

The executor applies micro-ops to a :class:`CrossbarArray`, advancing a
:class:`Clock` by each op's cycle cost and collecting a
:class:`RunStats`.  The per-op costs match the paper's accounting:
1 cc for any row-parallel NOR/NOT/INIT/WRITE/READ, 2 cc for a periphery
shift (read + write-back).

Data enters a program through *bindings* (name -> integer) consumed by
WRITE ops and leaves through *results* (name -> integer) produced by
READ ops; both are LSB-first bit fields within a row.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.crossbar.array import CrossbarArray
from repro.magic.ops import Init, MicroOp, Nop, Nor, Not, Read, Shift, Write
from repro.magic.program import Program
from repro.sim.clock import Clock
from repro.sim.exceptions import ProgramError
from repro.sim.stats import RunStats
from repro.sim.trace import Trace


def int_to_bits(value: int, width: int) -> np.ndarray:
    """LSB-first bit vector of *value* over *width* bits."""
    if value < 0:
        raise ValueError("only non-negative integers are storable")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=bool)


def bits_to_int(bits: np.ndarray) -> int:
    """Integer from an LSB-first bit vector."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


class MagicExecutor:
    """Executes :class:`Program` objects cycle-accurately.

    Parameters
    ----------
    array:
        Target crossbar.
    clock:
        Shared cycle counter; a fresh one is created when omitted.
    trace:
        Optional micro-op trace sink.
    """

    def __init__(
        self,
        array: CrossbarArray,
        clock: Optional[Clock] = None,
        trace: Optional[Trace] = None,
    ):
        self.array = array
        self.clock = clock if clock is not None else Clock()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.results: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _col_mask(self, cols) -> Optional[np.ndarray]:
        if cols is None:
            return None
        start, stop = cols
        if not (0 <= start < stop <= self.array.cols):
            raise ProgramError(
                f"column range {cols} outside array width {self.array.cols}"
            )
        mask = np.zeros(self.array.cols, dtype=bool)
        mask[start:stop] = True
        return mask

    def _field(self, col_offset: int, width: Optional[int]) -> slice:
        if width is None:
            width = self.array.cols - col_offset
        if col_offset < 0 or col_offset + width > self.array.cols:
            raise ProgramError(
                f"field [{col_offset}, {col_offset + width}) outside array"
            )
        return slice(col_offset, col_offset + width)

    # ------------------------------------------------------------------
    def execute(
        self,
        program: Program,
        bindings: Optional[Dict[str, int]] = None,
    ) -> RunStats:
        """Run *program* to completion and return its :class:`RunStats`.

        READ results accumulate in :attr:`results` and are also returned
        via the stats-independent :attr:`results` mapping.
        """
        bindings = bindings or {}
        stats = RunStats()
        energy_before = self.array.energy_fj
        for op in program:
            self._dispatch(op, bindings, stats)
            stats.cycles += op.cycles
            self.clock.tick(op.cycles, category=op.opcode)
            stats.op_counts[op.opcode] = stats.op_counts.get(op.opcode, 0) + 1
            self.trace.record(self.clock.cycles, op.opcode, repr(op))
        stats.energy_fj = self.array.energy_fj - energy_before
        return stats

    # ------------------------------------------------------------------
    def _dispatch(self, op: MicroOp, bindings: Dict[str, int], stats: RunStats) -> None:
        if isinstance(op, Init):
            self.array.init_rows(op.rows, self._col_mask(op.cols))
            stats.init_ops += 1
        elif isinstance(op, Nor):
            self.array.nor_rows(list(op.in_rows), op.out_row, self._col_mask(op.cols))
            stats.nor_ops += 1
        elif isinstance(op, Not):
            self.array.not_row(op.in_row, op.out_row, self._col_mask(op.cols))
            stats.not_ops += 1
        elif isinstance(op, Write):
            self._do_write(op, bindings)
            stats.write_ops += 1
        elif isinstance(op, Read):
            self._do_read(op)
            stats.read_ops += 1
        elif isinstance(op, Shift):
            self._do_shift(op)
            stats.shift_ops += 1
        elif isinstance(op, Nop):
            pass
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown micro-op {op!r}")

    def _do_write(self, op: Write, bindings: Dict[str, int]) -> None:
        if op.name not in bindings:
            raise ProgramError(f"WRITE references unbound operand {op.name!r}")
        field = self._field(op.col_offset, op.width)
        width = field.stop - field.start
        bits = int_to_bits(bindings[op.name], width)
        word = self.array.state[op.row].copy()
        word[field] = bits
        mask = np.zeros(self.array.cols, dtype=bool)
        mask[field] = True
        self.array.write_row(op.row, word, mask)

    def _do_read(self, op: Read) -> None:
        field = self._field(op.col_offset, op.width)
        word = self.array.read_row(op.row)
        self.results[op.name] = bits_to_int(word[field])

    def _do_shift(self, op: Shift) -> None:
        mask = self._col_mask(op.cols)
        window = slice(0, self.array.cols) if op.cols is None else slice(*op.cols)
        src = self.array.read_row(op.src_row)[window]
        shifted = np.full(src.shape, bool(op.fill))
        if op.offset >= 0:
            if op.offset < len(src):
                shifted[op.offset:] = src[: len(src) - op.offset]
        else:
            amount = -op.offset
            if amount < len(src):
                shifted[: len(src) - amount] = src[amount:]
        word = self.array.state[op.dst_row].copy()
        word[window] = shifted
        self.array.write_row(op.dst_row, word, mask)
        if op.also_init:
            # Piggy-backed initialisation during the write cycle: the
            # word-line driver raises the listed rows while the write
            # circuit programs the shifted word.  No extra cycles.
            self.array.init_rows(op.also_init, mask)
