"""Cycle-accurate executors for MAGIC programs on crossbar arrays.

Two execution paths share one instruction set:

* :class:`MagicExecutor` — the scalar reference path.  It applies
  micro-ops one at a time to a :class:`CrossbarArray`, advancing a
  :class:`Clock` by each op's cycle cost and collecting a
  :class:`RunStats`.  The per-op costs match the paper's accounting:
  1 cc for any row-parallel NOR/NOT/INIT/WRITE/READ, 2 cc for a
  periphery shift (read + write-back).
* :class:`BatchedMagicExecutor` — the SIMD path (paper Sec. II-B).  A
  :class:`Program` is *compiled once* (parsed, validated, column masks
  and field slices precomputed) into a :class:`CompiledProgram`, then
  replayed against a :class:`BatchedCrossbarArray` so one pass of numpy
  kernels evaluates every lane of a ``(batch, rows, cols)`` state
  tensor.  Per-lane results, cycle counts, write counters and energy
  are bit-identical to running the scalar executor once per lane — the
  scalar path is kept as the differential-testing oracle.

Data enters a program through *bindings* (name -> integer) consumed by
WRITE ops and leaves through *results* (name -> integer) produced by
READ ops; both are LSB-first bit fields within a row.  Results are
per-run: each :meth:`MagicExecutor.execute` clears the previous run's
mapping and also attaches its own mapping to the returned stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crossbar.array import (
    BatchedCrossbarArray,
    CrossbarArray,
    WordPackedCrossbarArray,
    _csa_add,
)
from repro.magic.ops import (
    Init,
    MicroOp,
    Nop,
    Nor,
    Not,
    ParallelNor,
    ParallelNot,
    Read,
    Shift,
    Write,
)
from repro.magic.program import Program
from repro.sim.clock import Clock
from repro.sim.exceptions import MagicProtocolError, ProgramError
from repro.sim.stats import RunStats
from repro.sim.trace import Trace
from repro.telemetry import spans as _telemetry


def int_to_bits(value: int, width: int) -> np.ndarray:
    """LSB-first bit vector of *value* over *width* bits."""
    if value < 0:
        raise ValueError("only non-negative integers are storable")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    raw = np.frombuffer(value.to_bytes((width + 7) // 8, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width].astype(bool)


def bits_to_int(bits: np.ndarray) -> int:
    """Integer from an LSB-first bit vector."""
    bits = np.ascontiguousarray(bits, dtype=bool)
    if bits.size == 0:
        return 0
    return int.from_bytes(
        np.packbits(bits, bitorder="little").tobytes(), "little"
    )


def pack_ints(values: Sequence[int], width: int) -> np.ndarray:
    """Stack LSB-first bit vectors of *values* into a ``(len, width)``
    bool matrix (the batched counterpart of :func:`int_to_bits`).

    Every value is validated (non-negative, fits in *width* bits)
    before any early return, so an out-of-range operand is rejected
    even when the degenerate ``width == 0`` shape short-circuits the
    bit unpacking; iterables are materialised once, so generators are
    accepted.
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    values = list(values)
    for value in values:
        if value < 0:
            raise ValueError("only non-negative integers are storable")
        if value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
    if not values or width == 0:
        return np.zeros((len(values), width), dtype=bool)
    nbytes = (width + 7) // 8
    chunks = [value.to_bytes(nbytes, "little") for value in values]
    raw = np.frombuffer(b"".join(chunks), dtype=np.uint8).reshape(len(values), nbytes)
    return np.unpackbits(raw, axis=1, bitorder="little")[:, :width].astype(bool)


def unpack_ints(words: np.ndarray) -> List[int]:
    """Integers from a ``(batch, width)`` LSB-first bit matrix (the
    batched counterpart of :func:`bits_to_int`)."""
    words = np.ascontiguousarray(words, dtype=bool)
    if words.ndim != 2:
        raise ValueError(f"expected a (batch, width) bit matrix, got {words.shape}")
    if words.shape[1] == 0:
        return [0] * words.shape[0]
    packed = np.packbits(words, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


#: Compiled-step opcodes (tuple dispatch in the batched inner loop).
#: _PACK carries a gang of independent NOR gates retired in one cycle.
_INIT, _NOR, _WRITE, _READ, _SHIFT, _NOP, _PACK = range(7)

#: RunStats counter attribute per micro-op opcode.
_STAT_FIELD = {
    "init": "init_ops",
    "nor": "nor_ops",
    "not": "not_ops",
    "write": "write_ops",
    "read": "read_ops",
    "shift": "shift_ops",
}


class CompiledProgram:
    """A :class:`Program` lowered for replay at near-zero Python cost.

    Compilation validates every op against the target array geometry,
    materialises column masks and field slices once, and precomputes the
    static stats (cycle count, op histogram, per-category cycles).  The
    compiled form is immutable and reusable: one compile, any number of
    :meth:`BatchedMagicExecutor.execute` replays with fresh bindings.
    """

    def __init__(self, program: Program, rows: int, cols: int):
        self.program = program
        self.rows = rows
        self.cols = cols
        self.label = program.label
        self.cycle_count = 0
        self.op_counts: Dict[str, int] = {}
        self.cycles_by_opcode: Dict[str, int] = {}
        self.stat_counts: Dict[str, int] = {}
        #: Unique (name, width) pairs consumed by WRITE ops.
        self.write_specs: List[Tuple[str, int]] = []
        self.steps: List[tuple] = []
        self._compile(program)

    # ------------------------------------------------------------------
    def _col_mask(self, cols) -> Optional[np.ndarray]:
        if cols is None:
            return None
        start, stop = cols
        if not (0 <= start < stop <= self.cols):
            raise ProgramError(
                f"column range {cols} outside array width {self.cols}"
            )
        if start == 0 and stop == self.cols:
            # Full-width window: lower to the unmasked fast path (a
            # full-ones mask selects the same cells, so accounting is
            # unchanged).
            return None
        mask = np.zeros(self.cols, dtype=bool)
        mask[start:stop] = True
        return mask

    def _field(self, col_offset: int, width: Optional[int]) -> slice:
        if width is None:
            width = self.cols - col_offset
        if col_offset < 0 or col_offset + width > self.cols:
            raise ProgramError(
                f"field [{col_offset}, {col_offset + width}) outside array"
            )
        return slice(col_offset, col_offset + width)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ProgramError(f"row {row} outside array height {self.rows}")

    def _compile(self, program: Program) -> None:
        specs_seen: Dict[Tuple[str, int], None] = {}
        for op in program:
            op.validate(self.rows, self.cols)
            self.cycle_count += op.cycles
            self.op_counts[op.opcode] = self.op_counts.get(op.opcode, 0) + 1
            self.cycles_by_opcode[op.opcode] = (
                self.cycles_by_opcode.get(op.opcode, 0) + op.cycles
            )
            stat_field = _STAT_FIELD.get(op.opcode)
            if stat_field:
                # A packed op retires one gate per gang member within
                # its single cycle; stats count gates, the clock counts
                # cycles.
                weight = (
                    len(op.gates)
                    if isinstance(op, (ParallelNor, ParallelNot))
                    else 1
                )
                self.stat_counts[stat_field] = (
                    self.stat_counts.get(stat_field, 0) + weight
                )
            if isinstance(op, (ParallelNor, ParallelNot)):
                gang = []
                for g in op.gates:
                    in_rows = (
                        list(g.in_rows) if isinstance(g, Nor) else [g.in_row]
                    )
                    gang.append((in_rows, g.out_row, self._col_mask(g.cols)))
                self.steps.append((_PACK, tuple(gang)))
            elif isinstance(op, Init):
                self.steps.append(
                    (_INIT, tuple(dict.fromkeys(op.rows)), self._col_mask(op.cols))
                )
            elif isinstance(op, Nor):
                self.steps.append(
                    (_NOR, list(op.in_rows), op.out_row, self._col_mask(op.cols))
                )
            elif isinstance(op, Not):
                self.steps.append(
                    (_NOR, [op.in_row], op.out_row, self._col_mask(op.cols))
                )
            elif isinstance(op, Write):
                field = self._field(op.col_offset, op.width)
                if field.start == 0 and field.stop == self.cols:
                    mask = None
                else:
                    mask = np.zeros(self.cols, dtype=bool)
                    mask[field] = True
                spec = (op.name, field.stop - field.start)
                specs_seen.setdefault(spec)
                self.steps.append((_WRITE, op.row, field, mask, spec))
            elif isinstance(op, Read):
                field = self._field(op.col_offset, op.width)
                self.steps.append((_READ, op.row, field, op.name))
            elif isinstance(op, Shift):
                mask = self._col_mask(op.cols)
                window = (
                    slice(0, self.cols) if op.cols is None else slice(*op.cols)
                )
                self.steps.append(
                    (
                        _SHIFT,
                        op.src_row,
                        op.dst_row,
                        op.offset,
                        bool(op.fill),
                        window,
                        mask,
                        tuple(dict.fromkeys(op.also_init)),
                    )
                )
            elif isinstance(op, Nop):
                self.steps.append((_NOP,))
            else:  # pragma: no cover - defensive
                raise ProgramError(f"unknown micro-op {op!r}")
        self.write_specs = list(specs_seen)

    def __len__(self) -> int:
        return len(self.steps)


def compile_program(program: Program, rows: int, cols: int) -> CompiledProgram:
    """Validate *program* against an array geometry and lower it."""
    return CompiledProgram(program, rows, cols)


class CompileCacheStats:
    """Hit/miss/eviction counters of one compile cache.

    The service layer aggregates these across every executor it owns to
    surface program-compilation reuse in its metrics snapshot."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class _CompileCache:
    """Identity-keyed cache of compiled programs.

    Keyed by ``(id(program), len(program), program.generation)`` with a
    strong reference to the program so ids cannot be recycled.
    Extending a program through :meth:`Program.extend` changes both the
    length and the mutation generation; replacing ops *in place* at an
    unchanged length bumps the generation alone — either way the stale
    compiled artifact misses and the program is recompiled.

    An optional *max_entries* bounds the cache with least-recently-used
    eviction; unbounded by default, which matches the historical
    behaviour (stage executors hold a handful of mega-programs for the
    lifetime of the stage).
    """

    def __init__(self, rows: int, cols: int, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("compile cache needs at least one entry")
        self.rows = rows
        self.cols = cols
        self.max_entries = max_entries
        self.stats = CompileCacheStats()
        self._entries: Dict[
            Tuple[int, int, int], Tuple[Program, CompiledProgram]
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, program: Program) -> CompiledProgram:
        key = (
            id(program),
            len(program.ops),
            getattr(program, "generation", 0),
        )
        entry = self._entries.get(key)
        if entry is not None and entry[0] is program:
            self.stats.hits += 1
            # Refresh recency (dicts iterate in insertion order).
            self._entries.pop(key)
            self._entries[key] = entry
            return entry[1]
        self.stats.misses += 1
        compiled = CompiledProgram(program, self.rows, self.cols)
        self._entries[key] = (program, compiled)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.evictions += 1
        return compiled


class MagicExecutor:
    """Executes :class:`Program` objects cycle-accurately (scalar path).

    Parameters
    ----------
    array:
        Target crossbar.
    clock:
        Shared cycle counter; a fresh one is created when omitted.
    trace:
        Optional micro-op trace sink.
    fault_hook:
        Optional transient-fault injector (duck-typed; see
        :class:`repro.crossbar.faults.TransientFaultInjector`).  Its
        ``on_nor`` / ``on_write`` / ``on_read`` callbacks fire after the
        corresponding micro-op so faults strike *mid-program*, not just
        as statically pinned cells.
    """

    def __init__(
        self,
        array: CrossbarArray,
        clock: Optional[Clock] = None,
        trace: Optional[Trace] = None,
        fault_hook=None,
    ):
        self.array = array
        self.clock = clock if clock is not None else Clock()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.fault_hook = fault_hook
        self.results: Dict[str, int] = {}
        self._compile_cache = _CompileCache(array.rows, array.cols)

    def compile_cache_stats(self) -> CompileCacheStats:
        """Hit/miss counters of this executor's program-compile cache."""
        return self._compile_cache.stats

    def compile(self, program: Program) -> CompiledProgram:
        """Compile (and cache) *program* for this array's geometry.

        The compiled form is immutable and geometry-keyed, so it can be
        replayed by any :class:`BatchedMagicExecutor` whose array has
        the same ``rows x cols`` — the stage batch paths use this to
        compile their mega-programs once and replay them per batch.
        """
        return self._compile_cache.get(program)

    # ------------------------------------------------------------------
    def _col_mask(self, cols) -> Optional[np.ndarray]:
        if cols is None:
            return None
        start, stop = cols
        if not (0 <= start < stop <= self.array.cols):
            raise ProgramError(
                f"column range {cols} outside array width {self.array.cols}"
            )
        mask = np.zeros(self.array.cols, dtype=bool)
        mask[start:stop] = True
        return mask

    def _field(self, col_offset: int, width: Optional[int]) -> slice:
        if width is None:
            width = self.array.cols - col_offset
        if col_offset < 0 or col_offset + width > self.array.cols:
            raise ProgramError(
                f"field [{col_offset}, {col_offset + width}) outside array"
            )
        return slice(col_offset, col_offset + width)

    # ------------------------------------------------------------------
    def execute(
        self,
        program: Program,
        bindings: Optional[Dict[str, int]] = None,
    ) -> RunStats:
        """Run *program* to completion and return its :class:`RunStats`.

        READ results are collected per run: :attr:`results` holds the
        mapping of the most recent run only (a previous run's names do
        not leak into the next), and the same mapping is attached to the
        returned stats as ``stats.results``.
        """
        bindings = bindings or {}
        run_results: Dict[str, int] = {}
        self.results = run_results
        stats = RunStats(results=run_results)
        energy_before = self.array.energy_fj
        trace_enabled = self.trace.enabled
        tracer = _telemetry.active()
        for op in program:
            self._dispatch(op, bindings, stats, run_results)
            stats.cycles += op.cycles
            self.clock.tick(op.cycles, category=op.opcode)
            stats.op_counts[op.opcode] = stats.op_counts.get(op.opcode, 0) + 1
            if trace_enabled:
                self.trace.record(self.clock.cycles, op.opcode, repr(op))
        stats.energy_fj = self.array.energy_fj - energy_before
        if tracer is not None:
            tracer.record(
                "magic.program",
                self.clock.cycles - stats.cycles,
                self.clock.cycles,
                label=program.label or "program",
                ops=len(program.ops),
                nor=stats.nor_ops + stats.not_ops,
                energy_fj=stats.energy_fj,
            )
        return stats

    def execute_batch(
        self,
        program: Program,
        bindings_list: Sequence[Dict[str, int]],
        backend: object = None,
    ) -> List[RunStats]:
        """Replay *program* over a batch of binding sets in one SIMD pass.

        The program is compiled (validated, column-masked) once and
        cached on this executor, so repeated calls replay it with fresh
        bindings at near-zero Python overhead.  Each lane starts from a
        copy of the scalar array's current state; the scalar array
        itself is left untouched (lanes diverge, so there is no single
        end state to write back).  The shared clock advances once by the
        program's cycle count — the SIMD semantics of row-parallel MAGIC:
        all lanes execute in lock-step.

        *backend* selects the batched execution strategy (an
        :class:`~repro.magic.backend.ExecutorBackend` instance or its
        registry name: ``"scalar"``, ``"bitplane"``, ``"word"``); the
        bit-plane path remains the default.  All backends are
        accounting-equivalent, so the choice only affects wall-clock
        simulation speed.

        Returns one :class:`RunStats` per lane, bit-identical (results,
        cycles, op counts, energy) to running :meth:`execute` with that
        lane's bindings on a scalar copy of the array.
        """
        from repro.magic.backend import get_backend

        if not bindings_list:
            return []
        compiled = self._compile_cache.get(program)
        resolved = get_backend(backend if backend is not None else "bitplane")
        batched = resolved.make_array(self.array, len(bindings_list))
        executor = resolved.make_executor(
            batched,
            clock=self.clock,
            trace=self.trace,
            fault_hook=self.fault_hook,
        )
        return executor.execute(compiled, bindings_list)

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        op: MicroOp,
        bindings: Dict[str, int],
        stats: RunStats,
        results: Dict[str, int],
    ) -> None:
        hook = self.fault_hook
        if isinstance(op, Init):
            self.array.init_rows(op.rows, self._col_mask(op.cols))
            stats.init_ops += 1
        elif isinstance(op, Nor):
            mask = self._col_mask(op.cols)
            self.array.nor_rows(list(op.in_rows), op.out_row, mask)
            if hook is not None:
                hook.on_nor(self.array, op.out_row, mask)
            stats.nor_ops += 1
        elif isinstance(op, Not):
            mask = self._col_mask(op.cols)
            self.array.not_row(op.in_row, op.out_row, mask)
            if hook is not None:
                hook.on_nor(self.array, op.out_row, mask)
            stats.not_ops += 1
        elif isinstance(op, (ParallelNor, ParallelNot)):
            # One cycle retires the whole gang: output word lines are
            # pairwise disjoint and never aliased by an operand row (the
            # op's constructor enforces it), so the sequential member
            # evaluation below is order-independent and each gate's
            # switching energy is charged exactly as in the unpacked
            # program.
            for g in op.gates:
                mask = self._col_mask(g.cols)
                if isinstance(g, Nor):
                    self.array.nor_rows(list(g.in_rows), g.out_row, mask)
                else:
                    self.array.not_row(g.in_row, g.out_row, mask)
                if hook is not None:
                    hook.on_nor(self.array, g.out_row, mask)
            if isinstance(op, ParallelNor):
                stats.nor_ops += len(op.gates)
            else:
                stats.not_ops += len(op.gates)
        elif isinstance(op, Write):
            self._do_write(op, bindings)
            stats.write_ops += 1
        elif isinstance(op, Read):
            self._do_read(op, results)
            stats.read_ops += 1
        elif isinstance(op, Shift):
            self._do_shift(op)
            stats.shift_ops += 1
        elif isinstance(op, Nop):
            pass
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown micro-op {op!r}")

    def _do_write(self, op: Write, bindings: Dict[str, int]) -> None:
        if op.name not in bindings:
            raise ProgramError(f"WRITE references unbound operand {op.name!r}")
        field = self._field(op.col_offset, op.width)
        width = field.stop - field.start
        bits = int_to_bits(bindings[op.name], width)
        word = self.array.peek_row(op.row)
        pre = word.copy() if self.fault_hook is not None else None
        word[field] = bits
        mask = np.zeros(self.array.cols, dtype=bool)
        mask[field] = True
        self.array.write_row(op.row, word, mask)
        if self.fault_hook is not None:
            self.fault_hook.on_write(self.array, op.row, mask, pre)

    def _do_read(self, op: Read, results: Dict[str, int]) -> None:
        field = self._field(op.col_offset, op.width)
        word = self.array.read_row(op.row)
        results[op.name] = bits_to_int(word[field])
        if self.fault_hook is not None:
            self.fault_hook.on_read(self.array, op.row)

    def _do_shift(self, op: Shift) -> None:
        mask = self._col_mask(op.cols)
        window = slice(0, self.array.cols) if op.cols is None else slice(*op.cols)
        # Only the window's sense amplifiers fire: narrow shifts must
        # not be charged a full-row read (the write below is already
        # masked to the window).
        src = self.array.read_row(op.src_row, mask)[window]
        shifted = np.full(src.shape, bool(op.fill))
        if op.offset >= 0:
            if op.offset < len(src):
                shifted[op.offset:] = src[: len(src) - op.offset]
        else:
            amount = -op.offset
            if amount < len(src):
                shifted[: len(src) - amount] = src[amount:]
        word = self.array.peek_row(op.dst_row)
        pre = word.copy() if self.fault_hook is not None else None
        word[window] = shifted
        self.array.write_row(op.dst_row, word, mask)
        if self.fault_hook is not None:
            write_mask = (
                np.ones(self.array.cols, dtype=bool) if mask is None else mask
            )
            self.fault_hook.on_write(self.array, op.dst_row, write_mask, pre)
        if op.also_init:
            # Piggy-backed initialisation during the write cycle: the
            # word-line driver raises the listed rows while the write
            # circuit programs the shifted word.  No extra cycles.
            self.array.init_rows(op.also_init, mask)


class BatchedMagicExecutor:
    """Replays compiled programs against a :class:`BatchedCrossbarArray`.

    One :meth:`execute` call evaluates every lane of the batch through a
    single pass of vectorised numpy kernels — the software analogue of
    the paper's row-parallel SIMD execution, extended across operand
    sets.  The clock advances once per op (lanes run in lock-step), and
    per-lane stats match the scalar executor bit-for-bit.
    """

    def __init__(
        self,
        array: BatchedCrossbarArray,
        clock: Optional[Clock] = None,
        trace: Optional[Trace] = None,
        fault_hook=None,
    ):
        self.array = array
        self.clock = clock if clock is not None else Clock()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.fault_hook = fault_hook
        self._compile_cache = _CompileCache(array.rows, array.cols)

    def compile_cache_stats(self) -> CompileCacheStats:
        """Hit/miss counters of this executor's program-compile cache."""
        return self._compile_cache.stats

    # ------------------------------------------------------------------
    def compile(self, program: Program) -> CompiledProgram:
        """Compile (and cache) *program* for this array's geometry."""
        return self._compile_cache.get(program)

    def execute(
        self,
        program,
        bindings_list: Sequence[Dict[str, int]],
    ) -> List[RunStats]:
        """Execute a :class:`Program` or :class:`CompiledProgram` with
        one binding set per lane; returns one :class:`RunStats` per lane.
        """
        compiled = (
            program
            if isinstance(program, CompiledProgram)
            else self.compile(program)
        )
        if compiled.rows != self.array.rows or compiled.cols != self.array.cols:
            raise ProgramError(
                f"program compiled for {compiled.rows}x{compiled.cols} "
                f"cannot run on {self.array.rows}x{self.array.cols}"
            )
        batch = self.array.batch
        if len(bindings_list) != batch:
            raise ProgramError(
                f"got {len(bindings_list)} binding sets for {batch} lanes"
            )
        packed: Dict[Tuple[str, int], np.ndarray] = {}
        for name, width in compiled.write_specs:
            try:
                values = [bindings[name] for bindings in bindings_list]
            except KeyError:
                raise ProgramError(
                    f"WRITE references unbound operand {name!r}"
                ) from None
            packed[(name, width)] = pack_ints(values, width)

        array = self.array
        energy_before = array.energy_fj.copy()
        results: List[Dict[str, int]] = [{} for _ in range(batch)]
        trace_enabled = self.trace.enabled
        hook = self.fault_hook
        for index, step in enumerate(compiled.steps):
            code = step[0]
            if code == _NOR:
                array.nor_rows(step[1], step[2], step[3])
                if hook is not None:
                    hook.on_nor(array, step[2], step[3])
            elif code == _PACK:
                for in_rows, out_row, mask in step[1]:
                    array.nor_rows(in_rows, out_row, mask)
                    if hook is not None:
                        hook.on_nor(array, out_row, mask)
            elif code == _INIT:
                array.init_rows(step[1], step[2])
            elif code == _WRITE:
                _, row, field, mask, spec = step
                word = array.peek_row(row)
                pre = word.copy() if hook is not None else None
                word[:, field] = packed[spec]
                array.write_row(row, word, mask)
                if hook is not None:
                    write_mask = mask
                    if write_mask is None:
                        write_mask = np.ones(array.cols, dtype=bool)
                    hook.on_write(array, row, write_mask, pre)
            elif code == _READ:
                _, row, field, name = step
                words = array.read_row(row)
                for lane, value in enumerate(unpack_ints(words[:, field])):
                    results[lane][name] = value
                if hook is not None:
                    hook.on_read(array, row)
            elif code == _SHIFT:
                self._do_shift(step)
            # _NOP: nothing to evaluate.
            if trace_enabled:
                op = compiled.program.ops[index]
                self.trace.record(self.clock.cycles, op.opcode, repr(op))
        begin_cc = self.clock.cycles
        for opcode, cycles in compiled.cycles_by_opcode.items():
            self.clock.tick(cycles, category=opcode)
        tracer = _telemetry.active()
        if tracer is not None:
            tracer.record(
                "magic.program",
                begin_cc,
                self.clock.cycles,
                label=compiled.label or "program",
                ops=len(compiled.steps),
                lanes=batch,
                nor=compiled.stat_counts.get("nor_ops", 0)
                + compiled.stat_counts.get("not_ops", 0),
            )

        energy = array.energy_fj - energy_before
        stats_list = []
        for lane in range(batch):
            stats = RunStats(
                cycles=compiled.cycle_count,
                energy_fj=float(energy[lane]),
                op_counts=dict(compiled.op_counts),
                results=results[lane],
            )
            for field_name, count in compiled.stat_counts.items():
                setattr(stats, field_name, count)
            stats_list.append(stats)
        return stats_list

    # ------------------------------------------------------------------
    def _do_shift(self, step: tuple) -> None:
        _, src_row, dst_row, offset, fill, window, mask, also_init = step
        array = self.array
        src = array.read_row(src_row, mask)[:, window]
        width = src.shape[1]
        shifted = np.full(src.shape, fill)
        if offset >= 0:
            if offset < width:
                shifted[:, offset:] = src[:, : width - offset]
        else:
            amount = -offset
            if amount < width:
                shifted[:, : width - amount] = src[:, amount:]
        word = array.peek_row(dst_row)
        hook = self.fault_hook
        pre = word.copy() if hook is not None else None
        word[:, window] = shifted
        array.write_row(dst_row, word, mask)
        if hook is not None:
            write_mask = (
                np.ones(array.cols, dtype=bool) if mask is None else mask
            )
            hook.on_write(array, dst_row, write_mask, pre)
        if also_init:
            array.init_rows(also_init, mask)


class _WordLoweredProgram:
    """A :class:`CompiledProgram` re-lowered to packed-integer steps.

    The lowering converts every column mask and field slice into the
    big-integer bit masks of one :class:`WordPackedCrossbarArray`
    geometry, and precomputes the program's data-independent accounting:
    the per-lane pulse-cell counts (set/reset/read) behind the constant
    part of the energy model, and the write-pulse *recipe* from which a
    per-row-map ``(phys_rows, cols)`` write-counter delta is
    materialised once and replayed per batch.  Cached on the compiled
    program keyed by lane width, so stage mega-programs lower once for
    the lifetime of the stage.
    """

    __slots__ = (
        "steps",
        "set_cells",
        "reset_cells",
        "read_cells",
        "writes_recipe",
        "_writes_deltas",
    )

    def __init__(self, compiled: CompiledProgram, lane_bits: int):
        cols = compiled.cols
        lane_block = (1 << lane_bits) - 1
        full = (1 << (cols * lane_bits)) - 1

        def mask_int(mask: Optional[np.ndarray]) -> int:
            if mask is None:
                return full
            out = 0
            for col in np.nonzero(mask)[0]:
                out |= lane_block << (int(col) * lane_bits)
            return out

        self.steps: List[tuple] = []
        self.set_cells = 0
        self.reset_cells = 0
        self.read_cells = 0
        #: (logical row, column mask or None) per write pulse.
        self.writes_recipe: List[Tuple[int, Optional[np.ndarray]]] = []
        #: (row_map, phys_rows) -> materialised (phys_rows, cols) delta.
        self._writes_deltas: Dict[tuple, np.ndarray] = {}

        for step in compiled.steps:
            code = step[0]
            if code == _NOR:
                _, in_rows, out_row, mask = step
                if out_row in in_rows:
                    # Row maps are injective, so logical aliasing is
                    # exactly physical aliasing; reject it once here
                    # instead of on every replay.
                    raise MagicProtocolError(
                        f"output row {out_row} cannot also be a NOR input"
                    )
                m = mask_int(mask)
                self.steps.append(
                    (_NOR, tuple(in_rows), out_row, m, full ^ m, mask)
                )
                self.writes_recipe.append((out_row, mask))
            elif code == _PACK:
                gang = []
                for in_rows, out_row, mask in step[1]:
                    if out_row in in_rows:
                        raise MagicProtocolError(
                            f"output row {out_row} cannot also be a NOR "
                            "input"
                        )
                    m = mask_int(mask)
                    gang.append(
                        (tuple(in_rows), out_row, m, full ^ m, mask)
                    )
                    self.writes_recipe.append((out_row, mask))
                self.steps.append((_PACK, tuple(gang)))
            elif code == _INIT:
                _, rows, mask = step
                cells = cols if mask is None else int(mask.sum())
                self.set_cells += cells * len(rows)
                for row in rows:
                    self.writes_recipe.append((row, mask))
                self.steps.append((_INIT, rows, mask_int(mask), mask))
            elif code == _WRITE:
                _, row, field, mask, spec = step
                width = field.stop - field.start
                shift = field.start * lane_bits
                field_block = ((1 << (width * lane_bits)) - 1) << shift
                # A full-row field lowers its mask to None; either way
                # the driven cells are exactly the field's.
                self.reset_cells += width
                self.writes_recipe.append((row, mask))
                self.steps.append(
                    (_WRITE, row, spec, shift, full ^ field_block, mask)
                )
            elif code == _READ:
                _, row, field, name = step
                # The batched read senses the full row (unmasked).
                self.read_cells += cols
                self.steps.append(
                    (_READ, row, field.start, field.stop - field.start, name)
                )
            elif code == _SHIFT:
                _, src, dst, offset, fill, window, mask, also_init = step
                span = window.stop - window.start
                win_shift = window.start * lane_bits
                window_block = (1 << (span * lane_bits)) - 1
                offset_bits = offset * lane_bits
                if not fill:
                    fill_mask = 0
                elif offset >= 0:
                    fill_mask = (1 << (min(offset, span) * lane_bits)) - 1
                else:
                    keep = max(span + offset, 0)
                    fill_mask = window_block ^ ((1 << (keep * lane_bits)) - 1)
                # One sensed read of the window, one masked write-back,
                # plus a piggy-backed INIT of each listed row.
                self.read_cells += span
                self.reset_cells += span
                self.set_cells += span * len(also_init)
                self.writes_recipe.append((dst, mask))
                for row in also_init:
                    self.writes_recipe.append((row, mask))
                window_mask = window_block << win_shift
                self.steps.append(
                    (
                        _SHIFT,
                        src,
                        dst,
                        offset_bits,
                        win_shift,
                        window_block,
                        window_mask,
                        full ^ window_mask,
                        fill_mask,
                        mask,
                        also_init,
                    )
                )
            else:  # _NOP
                self.steps.append((_NOP,))

    def energy_const_fj(self, device) -> float:
        """Data-independent per-lane energy of one replay on *device*."""
        return (
            device.e_set_fj * self.set_cells
            + device.e_reset_fj * self.reset_cells
            + device.e_read_fj * self.read_cells
        )

    def writes_delta(
        self, row_map: Sequence[int], phys_rows: int, cols: int
    ) -> np.ndarray:
        """Write-counter delta of one replay under *row_map*.

        Pulse placement is data-independent, so the delta is a static
        property of (program, remap table); it is materialised once per
        distinct row map and added to the array's counters per batch.
        """
        key = (tuple(row_map), phys_rows)
        delta = self._writes_deltas.get(key)
        if delta is None:
            delta = np.zeros((phys_rows, cols), dtype=np.int64)
            for row, mask in self.writes_recipe:
                phys = row_map[row]
                if mask is None:
                    delta[phys] += 1
                else:
                    delta[phys][mask] += 1
            self._writes_deltas[key] = delta
        return delta


class WordPackedMagicExecutor:
    """Replays compiled programs against a :class:`WordPackedCrossbarArray`.

    The word-packed fast path of the batched executor: every physical
    row is one big integer holding 64 batch lanes per machine word, so
    a row-parallel NOR over the whole batch is a handful of bitwise
    integer operations instead of a numpy pass over a byte-per-bit
    tensor.  Accounting is deferred: data-dependent switching energy is
    recorded as (coefficient, packed-mask) events popcounted lazily in
    one vectorised pass, and write counters are applied as one
    precomputed per-program delta — per-lane results, cycle counts,
    write counters and energy stay bit-identical to the scalar oracle
    and the bit-plane path.
    """

    def __init__(
        self,
        array: WordPackedCrossbarArray,
        clock: Optional[Clock] = None,
        trace: Optional[Trace] = None,
        fault_hook=None,
    ):
        self.array = array
        self.clock = clock if clock is not None else Clock()
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.fault_hook = fault_hook
        self._compile_cache = _CompileCache(array.rows, array.cols)

    def compile_cache_stats(self) -> CompileCacheStats:
        """Hit/miss counters of this executor's program-compile cache."""
        return self._compile_cache.stats

    def compile(self, program: Program) -> CompiledProgram:
        """Compile (and cache) *program* for this array's geometry."""
        return self._compile_cache.get(program)

    # ------------------------------------------------------------------
    def _lowered(self, compiled: CompiledProgram) -> _WordLoweredProgram:
        lane_bits = self.array.lane_bits
        cache = getattr(compiled, "_word_lowered", None)
        if cache is None:
            cache = {}
            compiled._word_lowered = cache
        lowered = cache.get(lane_bits)
        if lowered is None:
            lowered = _WordLoweredProgram(compiled, lane_bits)
            cache[lane_bits] = lowered
        return lowered

    def _pack_field(self, values: Sequence[int], width: int) -> int:
        """Marshal one per-lane operand column-major into a field int.

        Bit ``i * lane_bits + lane`` of the result is bit *i* of lane's
        value; padding lanes replicate the last real lane so full-word
        invariants (strict NOR checks) stay equivalent to per-lane ones.
        """
        bits = pack_ints(values, width)
        if width == 0:
            return 0
        lane_bits = self.array.lane_bits
        if lane_bits != bits.shape[0]:
            pad = np.broadcast_to(
                bits[-1:], (lane_bits - bits.shape[0], width)
            )
            bits = np.concatenate([bits, pad], axis=0)
        raw = np.packbits(
            np.ascontiguousarray(bits.T).reshape(-1), bitorder="little"
        )
        return int.from_bytes(raw.tobytes(), "little")

    def _read_field(self, value: int, width: int) -> List[int]:
        """Per-lane integers of one packed field (inverse marshalling)."""
        if width == 0:
            return [0] * self.array.batch
        lane_bits = self.array.lane_bits
        raw = np.frombuffer(
            value.to_bytes(width * lane_bits // 8, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(raw, bitorder="little").reshape(width, lane_bits)
        return unpack_ints(np.ascontiguousarray(bits[:, : self.array.batch].T))

    # ------------------------------------------------------------------
    def execute(
        self,
        program,
        bindings_list: Sequence[Dict[str, int]],
    ) -> List[RunStats]:
        """Execute a :class:`Program` or :class:`CompiledProgram` with
        one binding set per lane; returns one :class:`RunStats` per lane.
        """
        compiled = (
            program
            if isinstance(program, CompiledProgram)
            else self.compile(program)
        )
        array = self.array
        if compiled.rows != array.rows or compiled.cols != array.cols:
            raise ProgramError(
                f"program compiled for {compiled.rows}x{compiled.cols} "
                f"cannot run on {array.rows}x{array.cols}"
            )
        batch = array.batch
        if len(bindings_list) != batch:
            raise ProgramError(
                f"got {len(bindings_list)} binding sets for {batch} lanes"
            )
        lowered = self._lowered(compiled)
        packed: Dict[Tuple[str, int], int] = {}
        for name, width in compiled.write_specs:
            try:
                values = [bindings[name] for bindings in bindings_list]
            except KeyError:
                raise ProgramError(
                    f"WRITE references unbound operand {name!r}"
                ) from None
            packed[(name, width)] = self._pack_field(values, width)

        energy_before = array.energy_fj.copy()
        results: List[Dict[str, int]] = [{} for _ in range(batch)]
        trace_enabled = self.trace.enabled
        hook = self.fault_hook
        device = array.device
        e_reset = device.e_reset_fj
        w_coeff = device.e_set_fj - e_reset
        state = array._state
        rmap = array._row_map
        lane_bits = array.lane_bits
        # Carry-save energy counters; a flush empties these lists in
        # place, so the bindings stay valid for the whole replay.  One
        # counter per coefficient (setdefault aliases them if a device
        # makes the two coefficients collide).
        acc_add = _csa_add
        reset_planes = array._energy_acc.setdefault(e_reset, [])
        write_planes = array._energy_acc.setdefault(w_coeff, [])
        strict = array.strict_magic
        have_faults = bool(array._faults)
        for index, step in enumerate(lowered.steps):
            code = step[0]
            if code == _NOR:
                _, in_rows, out_row, m, notm, np_mask = step
                out_phys = rmap[out_row]
                out = state[out_phys]
                any_one = state[rmap[in_rows[0]]]
                for row in in_rows[1:]:
                    any_one = any_one | state[rmap[row]]
                am = any_one & m
                if strict:
                    if (out & m) != m:
                        raise MagicProtocolError(
                            f"NOR output row {out_row} not initialised to "
                            "logic one in every lane"
                        )
                    # out holds ones across m, so out & notm == out ^ m
                    # and the RESET event am & out collapses to am.
                    acc_add(reset_planes, am)
                    state[out_phys] = (out ^ m) | (m ^ am)
                else:
                    acc_add(reset_planes, am & out)
                    state[out_phys] = (out & notm) | (m ^ am)
                if have_faults:
                    array._apply_faults()
                if hook is not None:
                    hook.on_nor(array, out_row, np_mask)
                    have_faults = bool(array._faults)
            elif code == _PACK:
                for in_rows, out_row, m, notm, np_mask in step[1]:
                    out_phys = rmap[out_row]
                    out = state[out_phys]
                    any_one = state[rmap[in_rows[0]]]
                    for row in in_rows[1:]:
                        any_one = any_one | state[rmap[row]]
                    am = any_one & m
                    if strict:
                        if (out & m) != m:
                            raise MagicProtocolError(
                                f"NOR output row {out_row} not initialised "
                                "to logic one in every lane"
                            )
                        acc_add(reset_planes, am)
                        state[out_phys] = (out ^ m) | (m ^ am)
                    else:
                        acc_add(reset_planes, am & out)
                        state[out_phys] = (out & notm) | (m ^ am)
                    if have_faults:
                        array._apply_faults()
                    if hook is not None:
                        hook.on_nor(array, out_row, np_mask)
                        have_faults = bool(array._faults)
            elif code == _INIT:
                _, rows, m, np_mask = step
                for row in rows:
                    phys = rmap[row]
                    state[phys] = state[phys] | m
                if have_faults:
                    array._apply_faults()
            elif code == _WRITE:
                _, row, spec, shift, not_field, np_mask = step
                phys = rmap[row]
                pre = array.unpack_row(row) if hook is not None else None
                value = packed[spec] << shift
                acc_add(write_planes, value)
                state[phys] = (state[phys] & not_field) | value
                if have_faults:
                    array._apply_faults()
                if hook is not None:
                    write_mask = np_mask
                    if write_mask is None:
                        write_mask = np.ones(array.cols, dtype=bool)
                    hook.on_write(array, row, write_mask, pre)
                    have_faults = bool(array._faults)
            elif code == _READ:
                _, row, start, width, name = step
                word = (state[rmap[row]] >> (start * lane_bits)) & (
                    (1 << (width * lane_bits)) - 1
                )
                for lane, value in enumerate(self._read_field(word, width)):
                    results[lane][name] = value
                if hook is not None:
                    hook.on_read(array, row)
                    have_faults = bool(array._faults)
            elif code == _SHIFT:
                (
                    _,
                    src,
                    dst,
                    offset_bits,
                    win_shift,
                    window_block,
                    window_mask,
                    not_window,
                    fill_mask,
                    np_mask,
                    also_init,
                ) = step
                dst_phys = rmap[dst]
                w = (state[rmap[src]] >> win_shift) & window_block
                if offset_bits >= 0:
                    sh = (w << offset_bits) & window_block
                else:
                    sh = w >> -offset_bits
                sh |= fill_mask
                pre = array.unpack_row(dst) if hook is not None else None
                new = (state[dst_phys] & not_window) | (sh << win_shift)
                acc_add(write_planes, new & window_mask)
                state[dst_phys] = new
                if have_faults:
                    array._apply_faults()
                if hook is not None:
                    write_mask = np_mask
                    if write_mask is None:
                        write_mask = np.ones(array.cols, dtype=bool)
                    hook.on_write(array, dst, write_mask, pre)
                    have_faults = bool(array._faults)
                for row in also_init:
                    phys = rmap[row]
                    state[phys] = state[phys] | window_mask
                if also_init and have_faults:
                    array._apply_faults()
            # _NOP: nothing to evaluate.
            if trace_enabled:
                op = compiled.program.ops[index]
                self.trace.record(self.clock.cycles, op.opcode, repr(op))

        array._energy_const += lowered.energy_const_fj(device)
        array._writes += lowered.writes_delta(rmap, array.phys_rows, array.cols)
        begin_cc = self.clock.cycles
        for opcode, cycles in compiled.cycles_by_opcode.items():
            self.clock.tick(cycles, category=opcode)
        tracer = _telemetry.active()
        if tracer is not None:
            tracer.record(
                "magic.program",
                begin_cc,
                self.clock.cycles,
                label=compiled.label or "program",
                ops=len(compiled.steps),
                lanes=batch,
                nor=compiled.stat_counts.get("nor_ops", 0)
                + compiled.stat_counts.get("not_ops", 0),
            )

        energy = array.energy_fj - energy_before
        stats_list = []
        for lane in range(batch):
            stats = RunStats(
                cycles=compiled.cycle_count,
                energy_fj=float(energy[lane]),
                op_counts=dict(compiled.op_counts),
                results=results[lane],
            )
            for field_name, count in compiled.stat_counts.items():
                setattr(stats, field_name, count)
            stats_list.append(stats)
        return stats_list
