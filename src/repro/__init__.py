"""repro: Karatsuba large-integer multiplication for resistive in-memory
computing.

A full reproduction of "Exploring Large Integer Multiplication for
Cryptography Targeting In-Memory Computing" (DATE 2025): a cycle-accurate
MAGIC/ReRAM crossbar simulator, the three-stage pipelined Karatsuba
multiplier it hosts, the four scaled-up baseline designs of Table I, and
the modular-arithmetic application layer for FHE/ZKP workloads.

Quick start::

    from repro import KaratsubaCimMultiplier
    mul = KaratsubaCimMultiplier(256)
    assert mul.multiply(3, 5) == 15
    print(mul.metrics())
"""

from repro.karatsuba.design import KaratsubaCimMultiplier
from repro.crypto.modmul import ModularMultiplier
from repro.sim.stats import DesignMetrics

__version__ = "1.0.0"

__all__ = ["DesignMetrics", "KaratsubaCimMultiplier", "ModularMultiplier", "__version__"]
