"""Endurance analysis and wear-leveling for crossbar arrays.

ReRAM cells tolerate 1e10-1e11 write cycles (paper Sec. II-A), so a CIM
design must both minimise writes and spread them evenly.  The paper's
Kogge-Stone adder applies wear-leveling by periodically exchanging the
scratch region with the operand/result region, which "approximately
halves the wear effects" (Sec. IV-B).

:class:`EnduranceReport` summarises per-cell write counts of an array;
:class:`WearLevelingController` implements the region-swap policy and
exposes the logical-to-physical row mapping it maintains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.crossbar.array import CrossbarArray


@dataclass(frozen=True)
class EnduranceReport:
    """Write-wear summary of one crossbar array."""

    max_writes: int
    total_writes: int
    mean_writes: float
    nonzero_cells: int
    cells: int

    @property
    def imbalance(self) -> float:
        """Ratio of the hottest cell to the mean (1.0 = perfectly even)."""
        if self.mean_writes == 0:
            return 0.0
        return self.max_writes / self.mean_writes

    def lifetime_multiplications(self, endurance_cycles: int) -> int:
        """How many operations the array survives if each repeats this
        wear pattern, limited by the hottest cell."""
        if self.max_writes == 0:
            return endurance_cycles
        return endurance_cycles // self.max_writes


def analyze(array) -> EnduranceReport:
    """Build an :class:`EnduranceReport` from an array's write counters.

    Accepts a :class:`CrossbarArray` or a
    :class:`~repro.crossbar.array.BatchedCrossbarArray`; the latter's
    counters are per-lane (every lane experiences the same pulses), so
    the report reads as the wear of one lane."""
    writes = array.writes
    return EnduranceReport(
        max_writes=int(writes.max()),
        total_writes=int(writes.sum()),
        mean_writes=float(writes.mean()),
        nonzero_cells=int(np.count_nonzero(writes)),
        cells=array.cells,
    )


def row_write_histogram(array: CrossbarArray) -> List[int]:
    """Maximum write count per row (useful to spot hot scratch rows)."""
    return [int(array.writes[row].max()) for row in range(array.rows)]


class WearLevelingController:
    """Region-swap wear-leveling (paper Sec. IV-B).

    The controller partitions the physical rows of an array into two
    equal-purpose regions, *A* and *B*.  After every :meth:`swap` the
    logical roles of the regions are exchanged, so writes that always
    target the logical scratch region alternate between two physical
    row sets.  Over many operations the hottest cell receives roughly
    half the writes it would without leveling.

    The controller only maintains the mapping; callers translate
    logical rows through :meth:`physical_row` before touching the array.
    Swapping is a periphery-level remapping (address decoder update), so
    it costs no array cycles — matching the paper's claim that wear
    leveling "does not lower performance".
    """

    def __init__(self, region_a: Sequence[int], region_b: Sequence[int]):
        if len(region_a) != len(region_b):
            raise ValueError(
                "wear-leveling regions must have equal size, got "
                f"{len(region_a)} and {len(region_b)}"
            )
        if set(region_a) & set(region_b):
            raise ValueError("wear-leveling regions must be disjoint")
        self._region_a = list(region_a)
        self._region_b = list(region_b)
        self.swaps = 0
        self._mapping: Dict[int, int] = {}
        self._rebuild_mapping()

    def _rebuild_mapping(self) -> None:
        self._mapping = {row: row for row in self._region_a + self._region_b}
        if self.swaps % 2 == 1:
            for a_row, b_row in zip(self._region_a, self._region_b):
                self._mapping[a_row] = b_row
                self._mapping[b_row] = a_row

    def swap(self) -> None:
        """Exchange the logical roles of the two regions."""
        self.swaps += 1
        self._rebuild_mapping()

    def advance(self, count: int) -> None:
        """Apply *count* successive swaps in one step.

        Batched stage execution retires B multiplications per pass; the
        mapping only depends on swap parity, so advancing is O(1).
        """
        if count < 0:
            raise ValueError("swap count must be non-negative")
        self.swaps += count
        self._rebuild_mapping()

    @property
    def swapped(self) -> bool:
        """True when the regions are currently exchanged."""
        return self.swaps % 2 == 1

    def physical_row(self, logical_row: int) -> int:
        """Translate a logical row to its current physical row."""
        try:
            return self._mapping[logical_row]
        except KeyError:
            raise ValueError(
                f"row {logical_row} is not managed by this controller"
            ) from None

    def translate(self, logical_rows: Sequence[int]) -> List[int]:
        """Translate a sequence of logical rows."""
        return [self.physical_row(row) for row in logical_rows]
