"""Behavioural memristor (ReRAM cell) device model.

The paper (Sec. II-A) treats memristors behaviourally: a cell stores one
bit in its resistance (high resistance = logic 0, low resistance =
logic 1), is written by applying ``V_set`` / ``V_reset`` across it, read
non-destructively with a small ``V_read``, and wears out after 1e10 to
1e11 write cycles.  :class:`DeviceModel` captures these parameters;
:class:`Memristor` is a single simulated cell used by scalar-level tests
and the fault model (the bulk array stores state in numpy for speed and
consults the :class:`DeviceModel` only for thresholds and energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.exceptions import EnduranceExhaustedError

#: Endurance bounds reported in the paper's Sec. II-A [10]-[12].
ENDURANCE_LOW_CYCLES = 10**10
ENDURANCE_HIGH_CYCLES = 10**11


@dataclass(frozen=True)
class DeviceModel:
    """Electrical and lifetime parameters of one ReRAM technology.

    The defaults follow typical HfOx/TaOx values used by the MAGIC
    literature the paper builds on (Kvatinsky et al. [15], Talati et
    al. [10]).

    Attributes
    ----------
    r_on_ohm / r_off_ohm:
        Low-resistance (logic 1) and high-resistance (logic 0) states.
    v_set / v_reset:
        Write voltages for programming logic 1 / logic 0.
    v_read:
        Non-destructive sensing voltage, below the switching threshold.
    v_threshold:
        Minimum voltage magnitude across the device that can switch it.
    t_write_ns:
        Write pulse duration; one simulator clock cycle is one pulse.
    endurance_cycles:
        Rated writes per cell before the cell is considered worn out.
    e_set_fj / e_reset_fj / e_read_fj:
        Energy per set / reset / read event in femtojoules.
    """

    r_on_ohm: float = 1.0e3
    r_off_ohm: float = 1.0e6
    v_set: float = 2.0
    v_reset: float = -2.0
    v_read: float = 0.3
    v_threshold: float = 1.1
    t_write_ns: float = 1.1
    endurance_cycles: int = ENDURANCE_LOW_CYCLES
    e_set_fj: float = 115.0
    e_reset_fj: float = 61.0
    e_read_fj: float = 2.0

    def __post_init__(self) -> None:
        if self.r_on_ohm >= self.r_off_ohm:
            raise ValueError("r_on must be lower than r_off")
        if abs(self.v_read) >= abs(self.v_threshold):
            raise ValueError("v_read must be below the switching threshold")
        if self.endurance_cycles <= 0:
            raise ValueError("endurance must be positive")

    def resistance_for(self, bit: int) -> float:
        """Resistance encoding the given logic value."""
        return self.r_on_ohm if bit else self.r_off_ohm

    def can_switch(self, voltage: float) -> bool:
        """True when *voltage* magnitude suffices to switch the cell."""
        return abs(voltage) >= abs(self.v_threshold)

    def write_energy_fj(self, bit: int) -> float:
        """Energy of one write pulse programming *bit*."""
        return self.e_set_fj if bit else self.e_reset_fj


class Memristor:
    """A single simulated ReRAM cell with endurance tracking.

    This scalar model is used for device-level tests and documentation
    examples; :class:`repro.crossbar.array.CrossbarArray` vectorises the
    same semantics with numpy.
    """

    __slots__ = ("model", "_bit", "writes", "worn_out")

    def __init__(self, model: DeviceModel, initial_bit: int = 0):
        self.model = model
        self._bit = 1 if initial_bit else 0
        self.writes = 0
        self.worn_out = False

    @property
    def bit(self) -> int:
        """Current stored logic value (0 or 1)."""
        return self._bit

    @property
    def resistance_ohm(self) -> float:
        """Current resistance implied by the stored bit."""
        return self.model.resistance_for(self._bit)

    def write(self, bit: int, enforce_endurance: bool = True) -> None:
        """Program the cell to *bit*, counting the write pulse.

        Rewriting the same value still applies a pulse and counts
        against endurance, matching the pessimistic accounting used by
        the MAGIC literature.
        """
        if enforce_endurance and self.writes >= self.model.endurance_cycles:
            self.worn_out = True
            raise EnduranceExhaustedError(
                f"cell exceeded endurance of {self.model.endurance_cycles} writes"
            )
        self._bit = 1 if bit else 0
        self.writes += 1

    def read(self) -> int:
        """Non-destructively sense the stored bit."""
        return self._bit

    def apply_voltage(self, voltage: float) -> None:
        """Apply a raw voltage across the cell, switching it if above
        threshold (positive polarity sets, negative resets)."""
        if self.model.can_switch(voltage):
            self.write(1 if voltage > 0 else 0)

    def remaining_lifetime(self) -> int:
        """Writes remaining before the rated endurance is exhausted."""
        return max(0, self.model.endurance_cycles - self.writes)
