"""Bit-level ReRAM crossbar array with in-memory logic primitives.

The array stores one bit per memristor in a ``rows x cols`` grid
(Fig. 1a of the paper): horizontal word lines select rows, vertical bit
lines carry write voltages and sense currents.  On top of plain
read/write words it implements the stateful-logic primitives the paper
and its baselines rely on:

* **MAGIC NOR / NOT** (Sec. II-B): row-parallel NOR of one or more input
  rows into an output row whose cells were initialised to logic one.
* **IMPLY** (baseline [6]): material implication, destructive on the
  second operand row.
* **MAJORITY** (baseline [8]): row-parallel three-input majority.

The array is purely *spatial*: it tracks state, per-cell write counts
and injected faults, but not time.  Cycle accounting belongs to the
executors (:mod:`repro.magic.executor` and the baseline models), which
call into this class.

:class:`BatchedCrossbarArray` is the SIMD counterpart used by the
batched executor: it holds ``(batch, rows, cols)`` state so one micro-op
sequence evaluates *batch* independent operand sets in a single numpy
pass.  Write-pulse counts are data-independent (every lane sees the
same pulses for the same op sequence), so the write counters stay
``(rows, cols)`` with per-lane semantics; energy is data-dependent and
is tracked as one accumulator per lane.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.crossbar.device import DeviceModel
from repro.sim.exceptions import (
    AddressError,
    FaultInjectionError,
    MagicProtocolError,
    SpareRowsExhaustedError,
)

#: Supported stuck-at fault kinds.
FAULT_STUCK_AT_0 = "sa0"
FAULT_STUCK_AT_1 = "sa1"
_FAULT_KINDS = (FAULT_STUCK_AT_0, FAULT_STUCK_AT_1)


class CrossbarArray:
    """A simulated memristive crossbar.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (word lines x bit lines).
    device:
        Electrical/lifetime parameters shared by every cell.
    strict_magic:
        When true (the default), executing a MAGIC NOR whose output
        cells are not initialised to logic one raises
        :class:`MagicProtocolError` instead of silently computing a
        wrong value.  Disable only for fault-injection studies.
    spare_rows:
        Redundant word lines appended below the logical grid.  Logical
        row addresses stay ``0..rows-1``; :meth:`remap_row` retargets a
        logical row onto a spare physical word line (transparent to
        compiled programs, which only ever see logical addresses).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        device: Optional[DeviceModel] = None,
        strict_magic: bool = True,
        spare_rows: int = 0,
    ):
        if rows <= 0 or cols <= 0:
            raise ValueError(f"crossbar dimensions must be positive, got {rows}x{cols}")
        if spare_rows < 0:
            raise ValueError(f"spare_rows must be non-negative, got {spare_rows}")
        self.rows = rows
        self.cols = cols
        self.spare_rows = spare_rows
        self.device = device if device is not None else DeviceModel()
        self.strict_magic = strict_magic
        self.state = np.zeros((rows + spare_rows, cols), dtype=bool)
        self.writes = np.zeros((rows + spare_rows, cols), dtype=np.int64)
        self.energy_fj = 0.0
        #: Faults are keyed by *physical* coordinates, so remapping a
        #: logical row onto a spare leaves the defect behind.
        self._faults: Dict[Tuple[int, int], str] = {}
        #: Logical -> physical word-line translation.
        self._row_map = list(range(rows))
        self._spares_free = list(range(rows, rows + spare_rows))

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    @property
    def cells(self) -> int:
        """Total number of logical memristors in the array."""
        return self.rows * self.cols

    @property
    def phys_rows(self) -> int:
        """Physical word lines, including spares."""
        return self.rows + self.spare_rows

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} outside 0..{self.rows - 1}")

    def _row(self, row: int) -> int:
        """Translate a logical row address to its physical word line."""
        self._check_row(row)
        return self._row_map[row]

    def physical_row(self, row: int) -> int:
        """Public logical->physical translation (fault models need it to
        corrupt the cells actually backing a logical row)."""
        return self._row(row)

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.cols:
            raise AddressError(f"col {col} outside 0..{self.cols - 1}")

    def _mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.cols, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.cols,):
            raise AddressError(
                f"column mask shape {mask.shape} != ({self.cols},)"
            )
        return mask

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_fault(self, row: int, col: int, kind: str) -> None:
        """Pin the cell currently backing logical (*row*, *col*).

        The fault attaches to the *physical* word line the logical row
        maps to right now — remapping the row afterwards leaves the
        defective cell stranded on the retired physical line.
        """
        phys = self._row(row)
        self._check_col(col)
        if kind not in _FAULT_KINDS:
            raise FaultInjectionError(f"unknown fault kind {kind!r}")
        self._faults[(phys, col)] = kind
        self.state[phys, col] = kind == FAULT_STUCK_AT_1

    def clear_faults(self) -> None:
        """Remove all injected faults (cell values keep their last state)."""
        self._faults.clear()

    @property
    def fault_count(self) -> int:
        return len(self._faults)

    @property
    def faults(self) -> Dict[Tuple[int, int], str]:
        """Read-only copy of the injected fault map.

        Keys are *physical* ``(row, col)`` coordinates; values are the
        fault kinds (``"sa0"`` / ``"sa1"``).
        """
        return dict(self._faults)

    def _apply_faults(self) -> None:
        for (row, col), kind in self._faults.items():
            self.state[row, col] = kind == FAULT_STUCK_AT_1

    def repin_faults(self) -> None:
        """Re-assert every pinned fault onto the state.

        Public hook for fault models and repair paths that mutate
        ``state`` directly and must keep permanent defects visible.
        """
        self._apply_faults()

    # ------------------------------------------------------------------
    # Spare-row remapping & write-verify diagnosis
    # ------------------------------------------------------------------
    @property
    def spare_rows_free(self) -> int:
        """Spare word lines still available for remapping."""
        return len(self._spares_free)

    def remap_table(self) -> Dict[int, int]:
        """Logical rows currently remapped, as ``{logical: physical}``."""
        return {
            logical: phys
            for logical, phys in enumerate(self._row_map)
            if phys != logical
        }

    def remap_row(self, row: int) -> int:
        """Retarget logical *row* onto a fresh spare word line.

        The spare is initialised to logic one (the MAGIC steady state a
        freshly-initialised output row would hold); the caller replays
        whatever computation depended on the row.  Returns the physical
        line now backing the row; raises
        :class:`SpareRowsExhaustedError` when no spares remain.
        """
        self._check_row(row)
        if not self._spares_free:
            raise SpareRowsExhaustedError(
                f"cannot remap row {row}: 0 of {self.spare_rows} spare "
                "rows left"
            )
        phys = self._spares_free.pop(0)
        self._row_map[row] = phys
        self.state[phys] = True
        self._apply_faults()
        return phys

    def verify_row_writable(self, row: int) -> bool:
        """March-test logical *row*: write 0s and 1s, sense each back.

        Destructive — the row is left holding all-ones (the MAGIC
        steady state), so run this only during repair, before operands
        are (re)loaded.  Returns ``False`` when any cell fails to take
        either polarity (stuck-at, or a parametric write failure that
        happens to strike the march writes).
        """
        zeros = np.zeros(self.cols, dtype=bool)
        ones = np.ones(self.cols, dtype=bool)
        self.write_row(row, zeros)
        if bool(self.read_row(row).any()):
            self.write_row(row, ones)
            return False
        self.write_row(row, ones)
        return bool(self.read_row(row).all())

    def find_faulty_rows(self, rows: Optional[Iterable[int]] = None) -> list:
        """Write-verify every row in *rows* (default: all logical rows).

        Returns the logical rows that fail the march test.  Destructive
        (rows end holding all-ones) — see :meth:`verify_row_writable`.
        """
        candidates = range(self.rows) if rows is None else rows
        return [row for row in candidates if not self.verify_row_writable(row)]

    # ------------------------------------------------------------------
    # Plain memory operations
    # ------------------------------------------------------------------
    def write_row(
        self, row: int, bits: Sequence[int], mask: Optional[np.ndarray] = None
    ) -> None:
        """Program a full word: the word-line driver selects *row* and
        the write circuit drives every (unmasked) bit line at once."""
        row = self._row(row)
        mask = self._mask(mask)
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.cols,):
            raise AddressError(f"word shape {bits.shape} != ({self.cols},)")
        self.state[row, mask] = bits[mask]
        self.writes[row, mask] += 1
        self.energy_fj += float(
            np.where(bits[mask], self.device.e_set_fj, self.device.e_reset_fj).sum()
        )
        self._apply_faults()

    def read_row(self, row: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Sense a word via the bit-line sense amplifiers.

        A column *mask* restricts which sense amplifiers are activated:
        only masked cells are charged read energy.  The full row state
        is still returned (callers slice out their window); the energy
        model is what the mask exists for.
        """
        row = self._row(row)
        mask = self._mask(mask)
        self.energy_fj += self.device.e_read_fj * int(mask.sum())
        return self.state[row].copy()

    def write_bit(self, row: int, col: int, bit: int) -> None:
        """Program a single cell."""
        row = self._row(row)
        self._check_col(col)
        self.state[row, col] = bool(bit)
        self.writes[row, col] += 1
        self.energy_fj += self.device.write_energy_fj(int(bit))
        self._apply_faults()

    def read_bit(self, row: int, col: int) -> int:
        row = self._row(row)
        self._check_col(col)
        self.energy_fj += self.device.e_read_fj
        return int(self.state[row, col])

    def peek_row(self, row: int) -> np.ndarray:
        """Current word of logical *row* without sensing (no energy).

        Modelling convenience for read-modify-write composition: a
        masked write only drives its window, so the caller peeks the
        untouched cells rather than charging a full sense operation.
        """
        return self.state[self._row(row)].copy()

    # ------------------------------------------------------------------
    # Stateful logic primitives
    # ------------------------------------------------------------------
    def init_rows(
        self, rows: Iterable[int], mask: Optional[np.ndarray] = None
    ) -> None:
        """Initialise cells in *rows* to logic one (MAGIC preparation).

        Multiple word lines are driven simultaneously, so the MAGIC
        literature counts this as a single cycle regardless of how many
        rows are initialised; it is still one write pulse per cell.  A
        row listed more than once still receives exactly one pulse (the
        word line is either driven or not), so duplicates are counted
        and charged once.
        """
        mask = self._mask(mask)
        for row in dict.fromkeys(rows):
            row = self._row(row)
            self.state[row, mask] = True
            self.writes[row, mask] += 1
            self.energy_fj += self.device.e_set_fj * int(mask.sum())
        self._apply_faults()

    def nor_rows(
        self,
        in_rows: Sequence[int],
        out_row: int,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Row-parallel MAGIC NOR: ``out = NOR(in_rows)`` per bit line.

        Electrically, input word lines are driven at ``V0`` and the
        output row is grounded; output cells conduct enough current to
        switch to logic zero exactly when at least one input cell in the
        same bit line stores logic one.  A single-element *in_rows* is a
        MAGIC NOT.  Output cells must hold logic one beforehand.
        """
        if not in_rows:
            raise MagicProtocolError("MAGIC NOR requires at least one input row")
        in_phys = [self._row(row) for row in in_rows]
        out_phys = self._row(out_row)
        if out_phys in in_phys:
            raise MagicProtocolError(
                f"output row {out_row} cannot also be a NOR input"
            )
        mask = self._mask(mask)
        if self.strict_magic and not bool(self.state[out_phys, mask].all()):
            raise MagicProtocolError(
                f"NOR output row {out_row} not initialised to logic one"
            )
        any_one = np.zeros(self.cols, dtype=bool)
        for row in in_phys:
            any_one |= self.state[row]
        switching = mask & any_one & self.state[out_phys]
        self.state[out_phys, mask] = ~any_one[mask]
        # Every output cell receives the pulse; switching cells dissipate
        # the reset energy.
        self.writes[out_phys, mask] += 1
        self.energy_fj += self.device.e_reset_fj * int(switching.sum())
        self._apply_faults()

    def not_row(
        self, in_row: int, out_row: int, mask: Optional[np.ndarray] = None
    ) -> None:
        """MAGIC NOT: single-input special case of :meth:`nor_rows`."""
        self.nor_rows([in_row], out_row, mask)

    def imply_rows(
        self, p_row: int, q_row: int, mask: Optional[np.ndarray] = None
    ) -> None:
        """Row-parallel IMPLY: ``q <- p IMPLY q`` (destructive on *q*).

        Used by the IMPLY-based baseline [6].  Truth table: the result
        is 0 only when ``p = 1`` and ``q = 0``; since ``q`` already
        holds 0 in that case, only ``p = 0`` cells may switch ``q`` to 1.
        """
        p_row = self._row(p_row)
        q_row = self._row(q_row)
        if p_row == q_row:
            raise MagicProtocolError("IMPLY operand rows must differ")
        mask = self._mask(mask)
        p = self.state[p_row]
        result = ~p | self.state[q_row]
        switching = mask & result & ~self.state[q_row]
        self.state[q_row, mask] = result[mask]
        self.writes[q_row, mask] += 1
        self.energy_fj += self.device.e_set_fj * int(switching.sum())
        self._apply_faults()

    def maj_rows(
        self,
        in_rows: Sequence[int],
        out_row: int,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Row-parallel three-input MAJORITY into *out_row*.

        Used by the MAJORITY-logic baseline [8] (Reuben-style adders).
        """
        if len(in_rows) != 3:
            raise MagicProtocolError("MAJORITY requires exactly three input rows")
        in_phys = [self._row(row) for row in in_rows]
        out_phys = self._row(out_row)
        if out_phys in in_phys:
            raise MagicProtocolError("MAJORITY output row cannot be an input")
        mask = self._mask(mask)
        total = np.zeros(self.cols, dtype=np.int8)
        for row in in_phys:
            total += self.state[row].astype(np.int8)
        result = total >= 2
        # Like NOR/IMPLY, only cells whose value actually changes
        # dissipate switching energy; 0->1 transitions cost a set pulse,
        # 1->0 transitions a reset pulse.
        switching = mask & (result != self.state[out_phys])
        sets = int((switching & result).sum())
        resets = int((switching & ~result).sum())
        self.state[out_phys, mask] = result[mask]
        self.writes[out_phys, mask] += 1
        self.energy_fj += (
            self.device.e_set_fj * sets + self.device.e_reset_fj * resets
        )
        self._apply_faults()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_writes(self) -> int:
        """Maximum write count over all cells (the paper's endurance metric)."""
        return int(self.writes.max())

    def total_writes(self) -> int:
        return int(self.writes.sum())

    def reset_write_counters(self) -> None:
        self.writes.fill(0)

    def snapshot(self) -> np.ndarray:
        """Copy of the logical bit state (rows x cols), remap applied."""
        return self.state[self._row_map].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrossbarArray({self.rows}x{self.cols}, "
            f"max_writes={self.max_writes()}, faults={self.fault_count})"
        )


class BatchedCrossbarArray:
    """``batch`` independent crossbar lanes evaluated in lock-step.

    The batched array models the paper's row-parallel SIMD execution
    across *B* replicated operand sets: one micro-op is applied to every
    lane in a single vectorised numpy pass.  Semantics per lane are
    identical to :class:`CrossbarArray` — the differential tests assert
    this bit-for-bit.

    Accounting:

    * ``state`` is ``(batch, rows, cols)`` bool;
    * ``writes`` stays ``(rows, cols)`` and counts pulses **per lane**
      (pulse placement is data-independent, so every lane accumulates
      the same counts — :meth:`max_writes` therefore matches what a
      scalar array running any one lane would report);
    * ``energy_fj`` is a ``(batch,)`` float vector, one accumulator per
      lane (switching energy is data-dependent).

    Stuck-at faults pin the same physical cell in every lane.
    """

    def __init__(
        self,
        batch: int,
        rows: int,
        cols: int,
        device: Optional[DeviceModel] = None,
        strict_magic: bool = True,
        spare_rows: int = 0,
    ):
        if batch <= 0:
            raise ValueError(f"batch size must be positive, got {batch}")
        if rows <= 0 or cols <= 0:
            raise ValueError(f"crossbar dimensions must be positive, got {rows}x{cols}")
        if spare_rows < 0:
            raise ValueError(f"spare_rows must be non-negative, got {spare_rows}")
        self.batch = batch
        self.rows = rows
        self.cols = cols
        self.spare_rows = spare_rows
        self.device = device if device is not None else DeviceModel()
        self.strict_magic = strict_magic
        self.state = np.zeros((batch, rows + spare_rows, cols), dtype=bool)
        self.writes = np.zeros((rows + spare_rows, cols), dtype=np.int64)
        self.energy_fj = np.zeros(batch, dtype=np.float64)
        self._faults: Dict[Tuple[int, int], str] = {}
        self._row_map = list(range(rows))

    @classmethod
    def from_scalar(cls, array: CrossbarArray, batch: int) -> "BatchedCrossbarArray":
        """Replicate a scalar array's current state into *batch* lanes.

        Write counters and energy start at zero — the batched array
        accounts only for what executes on it; faults and the spare-row
        remap table carry over (so replays after a remap land on the
        repaired word lines).
        """
        out = cls(
            batch,
            array.rows,
            array.cols,
            device=array.device,
            strict_magic=array.strict_magic,
            spare_rows=array.spare_rows,
        )
        out.state[:] = array.state[np.newaxis]
        out._faults = dict(array._faults)
        out._row_map = list(array._row_map)
        out._apply_faults()
        return out

    # ------------------------------------------------------------------
    @property
    def cells(self) -> int:
        """Logical memristors per lane."""
        return self.rows * self.cols

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} outside 0..{self.rows - 1}")

    def _row(self, row: int) -> int:
        """Translate a logical row address to its physical word line."""
        self._check_row(row)
        return self._row_map[row]

    def physical_row(self, row: int) -> int:
        """Public logical->physical translation (see the scalar array)."""
        return self._row(row)

    def _mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.cols, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.cols,):
            raise AddressError(f"column mask shape {mask.shape} != ({self.cols},)")
        return mask

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_fault(self, row: int, col: int, kind: str) -> None:
        """Pin cell (*row*, *col*) of every lane to a stuck-at fault."""
        phys = self._row(row)
        if not 0 <= col < self.cols:
            raise AddressError(f"col {col} outside 0..{self.cols - 1}")
        if kind not in _FAULT_KINDS:
            raise FaultInjectionError(f"unknown fault kind {kind!r}")
        self._faults[(phys, col)] = kind
        self.state[:, phys, col] = kind == FAULT_STUCK_AT_1

    @property
    def faults(self) -> Dict[Tuple[int, int], str]:
        """Read-only copy of the fault map (physical coordinates)."""
        return dict(self._faults)

    def _apply_faults(self) -> None:
        for (row, col), kind in self._faults.items():
            self.state[:, row, col] = kind == FAULT_STUCK_AT_1

    def repin_faults(self) -> None:
        """Re-assert every pinned fault onto the state (public hook)."""
        self._apply_faults()

    def reset_to_ones(self) -> None:
        """Drive every cell (all lanes, spares included) to logic one.

        The MAGIC steady state a stage batch starts from; no energy or
        write pulses are charged — the stage's sequential path reaches
        the same state through its accounted program, so the batch seed
        is bookkeeping, not a modelled operation.  Re-pin faults after.
        """
        self.state[:] = True

    # ------------------------------------------------------------------
    # Plain memory operations (per-lane words)
    # ------------------------------------------------------------------
    def write_row(
        self, row: int, bits: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> None:
        """Program one word per lane: *bits* is ``(batch, cols)``."""
        row = self._row(row)
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.batch, self.cols):
            raise AddressError(
                f"word shape {bits.shape} != ({self.batch}, {self.cols})"
            )
        if mask is None:
            self.state[:, row] = bits
            self.writes[row] += 1
            masked = bits
        else:
            mask = self._mask(mask)
            self.state[:, row, mask] = bits[:, mask]
            self.writes[row, mask] += 1
            masked = bits[:, mask]
        self.energy_fj += np.where(
            masked, self.device.e_set_fj, self.device.e_reset_fj
        ).sum(axis=1)
        if self._faults:
            self._apply_faults()

    def read_row(self, row: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Sense one word per lane; returns ``(batch, cols)``.

        As in the scalar array, a column *mask* restricts which sense
        amplifiers fire and therefore which cells are charged read
        energy; the full per-lane rows are returned regardless.
        """
        row = self._row(row)
        if mask is None:
            sensed = self.cols
        else:
            sensed = int(self._mask(mask).sum())
        self.energy_fj += self.device.e_read_fj * sensed
        return self.state[:, row].copy()

    def peek_row(self, row: int) -> np.ndarray:
        """Per-lane word of logical *row* without sensing (no energy)."""
        return self.state[:, self._row(row)].copy()

    # ------------------------------------------------------------------
    # Stateful logic primitives
    # ------------------------------------------------------------------
    def init_rows(
        self, rows: Iterable[int], mask: Optional[np.ndarray] = None
    ) -> None:
        """Initialise cells in *rows* to logic one across all lanes."""
        if mask is None:
            for row in dict.fromkeys(rows):
                row = self._row(row)
                self.state[:, row] = True
                self.writes[row] += 1
                self.energy_fj += self.device.e_set_fj * self.cols
        else:
            mask = self._mask(mask)
            cells = int(mask.sum())
            for row in dict.fromkeys(rows):
                row = self._row(row)
                self.state[:, row, mask] = True
                self.writes[row, mask] += 1
                self.energy_fj += self.device.e_set_fj * cells
        if self._faults:
            self._apply_faults()

    def nor_rows(
        self,
        in_rows: Sequence[int],
        out_row: int,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Row-parallel MAGIC NOR evaluated in every lane at once."""
        if not in_rows:
            raise MagicProtocolError("MAGIC NOR requires at least one input row")
        in_phys = [self._row(row) for row in in_rows]
        out_phys = self._row(out_row)
        if out_phys in in_phys:
            raise MagicProtocolError(
                f"output row {out_row} cannot also be a NOR input"
            )
        state = self.state
        if len(in_phys) == 1:
            any_one = state[:, in_phys[0]]
        else:
            any_one = np.logical_or(state[:, in_phys[0]], state[:, in_phys[1]])
            for row in in_phys[2:]:
                np.logical_or(any_one, state[:, row], out=any_one)
        out = state[:, out_phys]
        if mask is None:
            if self.strict_magic and not bool(out.all()):
                raise MagicProtocolError(
                    f"NOR output row {out_row} not initialised to logic one "
                    "in every lane"
                )
            switching = np.count_nonzero(any_one & out, axis=1)
            np.logical_not(any_one, out=out)
            self.writes[out_phys] += 1
            self.energy_fj += self.device.e_reset_fj * switching
        else:
            mask = self._mask(mask)
            if self.strict_magic and not bool(out[:, mask].all()):
                raise MagicProtocolError(
                    f"NOR output row {out_row} not initialised to logic one "
                    "in every lane"
                )
            switching = any_one & out
            switching[:, ~mask] = False
            state[:, out_phys, mask] = ~any_one[:, mask]
            self.writes[out_phys, mask] += 1
            self.energy_fj += self.device.e_reset_fj * switching.sum(axis=1)
        if self._faults:
            self._apply_faults()

    def not_row(
        self, in_row: int, out_row: int, mask: Optional[np.ndarray] = None
    ) -> None:
        """MAGIC NOT: single-input special case of :meth:`nor_rows`."""
        self.nor_rows([in_row], out_row, mask)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_writes(self) -> int:
        """Per-lane maximum write count (matches the scalar metric)."""
        return int(self.writes.max())

    def total_writes(self) -> int:
        """Per-lane total write pulses."""
        return int(self.writes.sum())

    def lane_energy_fj(self, lane: int) -> float:
        """Energy accumulated by one lane, in femtojoules."""
        return float(self.energy_fj[lane])

    def total_energy_fj(self) -> float:
        """Energy summed over all lanes."""
        return float(self.energy_fj.sum())

    def snapshot(self, lane: int) -> np.ndarray:
        """Copy of one lane's logical bit state (rows x cols)."""
        return self.state[lane][self._row_map].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedCrossbarArray({self.batch}x{self.rows}x{self.cols}, "
            f"max_writes={self.max_writes()})"
        )


def _csa_add(planes: list, mask: int) -> None:
    """Add a packed bit-mask into a binary carry-save counter.

    ``planes[k]`` holds bit *k* of every cell's running event count, so
    one add is amortized ~2 big-integer operations and a counter over
    *N* events needs only ``log2(N)`` planes — the word-packed array's
    deferred energy accounting flushes planes, not events.
    """
    i = 0
    while mask:
        if i == len(planes):
            planes.append(mask)
            return
        carry = planes[i] & mask
        planes[i] ^= mask
        mask = carry
        i += 1


class WordPackedCrossbarArray:
    """Batched crossbar lanes packed 64-per-word into big integers.

    The word-packed counterpart of :class:`BatchedCrossbarArray`: each
    physical word line is stored as one Python integer in which bit
    ``col * lane_bits + lane`` holds lane *lane*'s value of column
    *col*, with ``lane_bits = 64 * ceil(batch / 64)``.  A row-parallel
    MAGIC NOR over the whole batch is then a handful of bitwise integer
    operations instead of a numpy pass over a byte-per-bit tensor —
    the ~64x storage-density headroom the bit-plane layout leaves on
    the table.

    Accounting matches :class:`BatchedCrossbarArray` per lane exactly,
    but is *deferred* so the hot loop stays in integer land:

    * data-dependent switching energy is recorded as
      ``(coefficient, packed-cell-mask)`` events and popcounted per
      lane in one vectorised pass when :attr:`energy_fj` is read;
    * write pulses are queued (or, on the executor fast path, applied
      as one precomputed per-program delta) and folded into the
      ``(phys_rows, cols)`` per-lane counters when :attr:`writes` is
      read.

    Lanes beyond the real batch (``batch`` is rarely a multiple of 64)
    replicate the last real lane everywhere — initial state, operand
    marshalling, fault pinning — so full-word invariants such as the
    strict-MAGIC init check are exactly equivalent to checking the real
    lanes, and the padding never contributes to trimmed accounting.
    """

    LANE_WORD = 64

    def __init__(
        self,
        batch: int,
        rows: int,
        cols: int,
        device: Optional[DeviceModel] = None,
        strict_magic: bool = True,
        spare_rows: int = 0,
    ):
        if batch <= 0:
            raise ValueError(f"batch size must be positive, got {batch}")
        if rows <= 0 or cols <= 0:
            raise ValueError(f"crossbar dimensions must be positive, got {rows}x{cols}")
        if spare_rows < 0:
            raise ValueError(f"spare_rows must be non-negative, got {spare_rows}")
        self.batch = batch
        self.rows = rows
        self.cols = cols
        self.spare_rows = spare_rows
        self.device = device if device is not None else DeviceModel()
        self.strict_magic = strict_magic
        self.words = (batch + self.LANE_WORD - 1) // self.LANE_WORD
        #: Bits reserved per column: one per lane, padded to whole words.
        self.lane_bits = self.words * self.LANE_WORD
        self.row_bits = cols * self.lane_bits
        self._full = (1 << self.row_bits) - 1
        self._lane_block = (1 << self.lane_bits) - 1
        #: One packed integer per physical word line.
        self._state: list = [0] * (rows + spare_rows)
        self._writes = np.zeros((rows + spare_rows, cols), dtype=np.int64)
        #: Queued write pulses: (phys row, column mask or None, count).
        self._pending_writes: list = []
        self._energy = np.zeros(batch, dtype=np.float64)
        #: Deferred per-lane-identical energy (data-independent pulses).
        self._energy_const = 0.0
        #: Deferred data-dependent energy, per coefficient: a binary
        #: carry-save counter over packed masks (plane *k* holds bit
        #: *k* of each cell's event count), so a program contributes
        #: O(log events) planes to flush instead of one mask per event.
        self._energy_acc: Dict[float, list] = {}
        self._faults: Dict[Tuple[int, int], str] = {}
        self._row_map = list(range(rows))

    @classmethod
    def from_scalar(
        cls, array: CrossbarArray, batch: int
    ) -> "WordPackedCrossbarArray":
        """Replicate a scalar array's current state into *batch* lanes.

        Mirrors :meth:`BatchedCrossbarArray.from_scalar`: counters start
        at zero, faults and the spare-row remap table carry over.
        """
        out = cls(
            batch,
            array.rows,
            array.cols,
            device=array.device,
            strict_magic=array.strict_magic,
            spare_rows=array.spare_rows,
        )
        for phys in range(array.rows + array.spare_rows):
            out._state[phys] = out._pack_uniform(array.state[phys])
        out._faults = dict(array._faults)
        out._row_map = list(array._row_map)
        out._apply_faults()
        return out

    # ------------------------------------------------------------------
    # Packing helpers
    # ------------------------------------------------------------------
    def _pack_uniform(self, bits: np.ndarray) -> int:
        """Packed row holding one ``(cols,)`` word in every lane."""
        expanded = np.repeat(np.asarray(bits, dtype=bool), self.lane_bits)
        raw = np.packbits(expanded, bitorder="little")
        return int.from_bytes(raw.tobytes(), "little")

    def _pack_word(self, bits: np.ndarray) -> int:
        """Packed row from a ``(batch, cols)`` per-lane word matrix.

        Padding lanes replicate the last real lane (see class notes).
        """
        bits = np.asarray(bits, dtype=bool)
        if self.lane_bits != self.batch:
            pad = np.broadcast_to(
                bits[-1:], (self.lane_bits - self.batch, self.cols)
            )
            bits = np.concatenate([bits, pad], axis=0)
        raw = np.packbits(
            np.ascontiguousarray(bits.T).reshape(-1), bitorder="little"
        )
        return int.from_bytes(raw.tobytes(), "little")

    def _unpack_word(self, value: int) -> np.ndarray:
        """``(batch, cols)`` bool matrix of one packed row."""
        raw = np.frombuffer(
            value.to_bytes(self.row_bits // 8, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(raw, bitorder="little").reshape(
            self.cols, self.lane_bits
        )
        return np.ascontiguousarray(bits[:, : self.batch].T).astype(bool)

    def _mask_int(self, mask: Optional[np.ndarray]) -> int:
        """Packed-cell mask selecting every lane of the masked columns."""
        if mask is None:
            return self._full
        mask = self._mask(mask)
        expanded = np.repeat(mask, self.lane_bits)
        raw = np.packbits(expanded, bitorder="little")
        return int.from_bytes(raw.tobytes(), "little")

    # ------------------------------------------------------------------
    # Deferred accounting
    # ------------------------------------------------------------------
    def _add_energy_event(self, coeff: float, mask: int) -> None:
        """Charge *coeff* femtojoules to every set cell of *mask*."""
        planes = self._energy_acc.get(coeff)
        if planes is None:
            planes = self._energy_acc[coeff] = []
        _csa_add(planes, mask)

    def _flush_energy(self) -> None:
        acc = self._energy_acc
        if acc:
            # Weight plane k of the coeff-c counter by c * 2**k; each
            # plane popcounts per lane in one vectorised unpackbits.
            # Plane lists are emptied in place so executor hot loops
            # may keep a binding to them across a flush.
            items = []
            for coeff, planes in acc.items():
                for k, plane in enumerate(planes):
                    if plane:
                        items.append((coeff * (1 << k), plane))
                planes.clear()
            if items:
                nbytes = self.row_bits // 8
                buf = b"".join(
                    plane.to_bytes(nbytes, "little") for _, plane in items
                )
                raw = np.frombuffer(buf, dtype=np.uint8).reshape(
                    len(items), self.cols, self.lane_bits // 8
                )
                bits = np.unpackbits(raw, axis=2, bitorder="little")
                counts = bits.sum(axis=1, dtype=np.int64)[:, : self.batch]
                coeffs = np.array(
                    [coeff for coeff, _ in items], dtype=np.float64
                )
                self._energy += coeffs @ counts
        if self._energy_const:
            self._energy += self._energy_const
            self._energy_const = 0.0

    def _flush_writes(self) -> None:
        if not self._pending_writes:
            return
        pending = self._pending_writes
        self._pending_writes = []
        for phys, mask, count in pending:
            if mask is None:
                self._writes[phys] += count
            else:
                self._writes[phys][mask] += count

    @property
    def writes(self) -> np.ndarray:
        """Per-lane write-pulse counters, ``(phys_rows, cols)`` int64."""
        self._flush_writes()
        return self._writes

    @property
    def energy_fj(self) -> np.ndarray:
        """Per-lane accumulated energy, ``(batch,)`` float64."""
        self._flush_energy()
        return self._energy

    # ------------------------------------------------------------------
    @property
    def cells(self) -> int:
        """Logical memristors per lane."""
        return self.rows * self.cols

    @property
    def phys_rows(self) -> int:
        """Physical word lines, including spares."""
        return self.rows + self.spare_rows

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} outside 0..{self.rows - 1}")

    def _row(self, row: int) -> int:
        """Translate a logical row address to its physical word line."""
        self._check_row(row)
        return self._row_map[row]

    def physical_row(self, row: int) -> int:
        """Public logical->physical translation (see the scalar array)."""
        return self._row(row)

    def _mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.cols, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.cols,):
            raise AddressError(f"column mask shape {mask.shape} != ({self.cols},)")
        return mask

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_fault(self, row: int, col: int, kind: str) -> None:
        """Pin cell (*row*, *col*) of every lane to a stuck-at fault."""
        phys = self._row(row)
        if not 0 <= col < self.cols:
            raise AddressError(f"col {col} outside 0..{self.cols - 1}")
        if kind not in _FAULT_KINDS:
            raise FaultInjectionError(f"unknown fault kind {kind!r}")
        self._faults[(phys, col)] = kind
        block = self._lane_block << (col * self.lane_bits)
        if kind == FAULT_STUCK_AT_1:
            self._state[phys] |= block
        else:
            self._state[phys] &= ~block

    @property
    def faults(self) -> Dict[Tuple[int, int], str]:
        """Read-only copy of the fault map (physical coordinates)."""
        return dict(self._faults)

    def _apply_faults(self) -> None:
        for (row, col), kind in self._faults.items():
            block = self._lane_block << (col * self.lane_bits)
            if kind == FAULT_STUCK_AT_1:
                self._state[row] |= block
            else:
                self._state[row] &= ~block

    def repin_faults(self) -> None:
        """Re-assert every pinned fault onto the state (public hook)."""
        self._apply_faults()

    def reset_to_ones(self) -> None:
        """Drive every cell (all lanes, spares included) to logic one.

        See :meth:`BatchedCrossbarArray.reset_to_ones`: unaccounted
        stage-batch seeding, not a modelled operation.
        """
        full = self._full
        for phys in range(len(self._state)):
            self._state[phys] = full

    # ------------------------------------------------------------------
    # Raw per-row views (fault hooks mutate state without accounting)
    # ------------------------------------------------------------------
    def unpack_row(self, row: int) -> np.ndarray:
        """Per-lane word of logical *row* as ``(batch, cols)`` bool.

        A detached copy — mutate it and :meth:`store_row` it back.  The
        fault-injection hooks use this pair to flip cells mid-program
        without charging energy or write pulses, exactly as they mutate
        the bit-plane state tensor in place.
        """
        return self._unpack_word(self._state[self._row(row)])

    def store_row(self, row: int, bits: np.ndarray) -> None:
        """Store a ``(batch, cols)`` word back without any accounting."""
        self._state[self._row(row)] = self._pack_word(bits)

    # ------------------------------------------------------------------
    # Plain memory operations (per-lane words)
    # ------------------------------------------------------------------
    def write_row(
        self, row: int, bits: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> None:
        """Program one word per lane: *bits* is ``(batch, cols)``."""
        phys = self._row(row)
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.batch, self.cols):
            raise AddressError(
                f"word shape {bits.shape} != ({self.batch}, {self.cols})"
            )
        value = self._pack_word(bits)
        if mask is None:
            self._state[phys] = value
            cells = self.cols
            masked = value
        else:
            mask = self._mask(mask)
            m = self._mask_int(mask)
            self._state[phys] = (self._state[phys] & ~m) | (value & m)
            cells = int(mask.sum())
            masked = value & m
        self._pending_writes.append((phys, mask, 1))
        self._energy_const += self.device.e_reset_fj * cells
        self._add_energy_event(
            self.device.e_set_fj - self.device.e_reset_fj, masked
        )
        if self._faults:
            self._apply_faults()

    def read_row(self, row: int, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Sense one word per lane; returns ``(batch, cols)``."""
        phys = self._row(row)
        if mask is None:
            sensed = self.cols
        else:
            sensed = int(self._mask(mask).sum())
        self._energy_const += self.device.e_read_fj * sensed
        return self._unpack_word(self._state[phys])

    def peek_row(self, row: int) -> np.ndarray:
        """Per-lane word of logical *row* without sensing (no energy)."""
        return self._unpack_word(self._state[self._row(row)])

    # ------------------------------------------------------------------
    # Stateful logic primitives
    # ------------------------------------------------------------------
    def init_rows(
        self, rows: Iterable[int], mask: Optional[np.ndarray] = None
    ) -> None:
        """Initialise cells in *rows* to logic one across all lanes."""
        if mask is not None:
            mask = self._mask(mask)
        m = self._mask_int(mask)
        cells = self.cols if mask is None else int(mask.sum())
        for row in dict.fromkeys(rows):
            phys = self._row(row)
            self._state[phys] |= m
            self._pending_writes.append((phys, mask, 1))
            self._energy_const += self.device.e_set_fj * cells
        if self._faults:
            self._apply_faults()

    def nor_rows(
        self,
        in_rows: Sequence[int],
        out_row: int,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Row-parallel MAGIC NOR evaluated in every lane at once."""
        if not in_rows:
            raise MagicProtocolError("MAGIC NOR requires at least one input row")
        in_phys = [self._row(row) for row in in_rows]
        out_phys = self._row(out_row)
        if out_phys in in_phys:
            raise MagicProtocolError(
                f"output row {out_row} cannot also be a NOR input"
            )
        if mask is not None:
            mask = self._mask(mask)
        m = self._mask_int(mask)
        out = self._state[out_phys]
        if self.strict_magic and (out & m) != m:
            raise MagicProtocolError(
                f"NOR output row {out_row} not initialised to logic one "
                "in every lane"
            )
        any_one = self._state[in_phys[0]]
        for row in in_phys[1:]:
            any_one = any_one | self._state[row]
        self._add_energy_event(self.device.e_reset_fj, any_one & out & m)
        self._state[out_phys] = (out & ~m) | (~any_one & m)
        self._pending_writes.append((out_phys, mask, 1))
        if self._faults:
            self._apply_faults()

    def not_row(
        self, in_row: int, out_row: int, mask: Optional[np.ndarray] = None
    ) -> None:
        """MAGIC NOT: single-input special case of :meth:`nor_rows`."""
        self.nor_rows([in_row], out_row, mask)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def max_writes(self) -> int:
        """Per-lane maximum write count (matches the scalar metric)."""
        return int(self.writes.max())

    def total_writes(self) -> int:
        """Per-lane total write pulses."""
        return int(self.writes.sum())

    def lane_energy_fj(self, lane: int) -> float:
        """Energy accumulated by one lane, in femtojoules."""
        return float(self.energy_fj[lane])

    def total_energy_fj(self) -> float:
        """Energy summed over all lanes."""
        return float(self.energy_fj.sum())

    def snapshot(self, lane: int) -> np.ndarray:
        """Copy of one lane's logical bit state (rows x cols)."""
        out = np.zeros((self.rows, self.cols), dtype=bool)
        for row in range(self.rows):
            out[row] = self._unpack_word(self._state[self._row_map[row]])[lane]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WordPackedCrossbarArray({self.batch}x{self.rows}x{self.cols}, "
            f"words={self.words})"
        )
