"""Energy accounting helpers for crossbar executions.

The paper's headline metrics are cycles and cells, but its motivation
is the energy cost of data movement on von Neumann machines; this
module provides a simple, documented energy model so that users can
compare CIM designs in energy terms as well.  Costs are attributed per
micro-op kind using the per-event figures from the device model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crossbar.device import DeviceModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to each operation category, in femtojoules."""

    by_category: Dict[str, float]

    @property
    def total_fj(self) -> float:
        return sum(self.by_category.values())

    @property
    def total_pj(self) -> float:
        return self.total_fj / 1e3

    @property
    def total_nj(self) -> float:
        return self.total_fj / 1e6

    def fraction(self, category: str) -> float:
        """Share of total energy spent in *category* (0 when unused)."""
        total = self.total_fj
        if total == 0:
            return 0.0
        return self.by_category.get(category, 0.0) / total


class EnergyModel:
    """Accumulates energy per operation category.

    The model charges:

    * one set pulse per cell initialised to logic one,
    * one reset pulse per NOR output cell that actually switches,
    * set/reset pulses per written cell in word writes,
    * one sense event per cell in word reads.

    These match the charging already done inside
    :class:`repro.crossbar.array.CrossbarArray`; this class exists to
    attribute the totals to categories for reporting.
    """

    def __init__(self, device: DeviceModel):
        self.device = device
        self._by_category: Dict[str, float] = {}

    def charge(self, category: str, energy_fj: float) -> None:
        """Add *energy_fj* femtojoules to *category*."""
        if energy_fj < 0:
            raise ValueError("energy must be non-negative")
        self._by_category[category] = self._by_category.get(category, 0.0) + energy_fj

    def charge_writes(self, category: str, set_cells: int, reset_cells: int) -> None:
        """Charge write pulses: *set_cells* sets plus *reset_cells* resets."""
        self.charge(
            category,
            set_cells * self.device.e_set_fj + reset_cells * self.device.e_reset_fj,
        )

    def charge_reads(self, category: str, cells: int) -> None:
        """Charge sensing *cells* bits."""
        self.charge(category, cells * self.device.e_read_fj)

    def charge_lanes(self, category: str, lane_energies_fj) -> None:
        """Charge a batched execution: one energy figure per lane.

        *lane_energies_fj* is any iterable of per-lane femtojoule totals
        (e.g. ``BatchedCrossbarArray.energy_fj``); the lanes model
        physically distinct operand sets flowing through the same
        array, so the category is charged their sum."""
        total = 0.0
        for energy in lane_energies_fj:
            if energy < 0:
                raise ValueError("energy must be non-negative")
            total += float(energy)
        self.charge(category, total)

    def breakdown(self) -> EnergyBreakdown:
        return EnergyBreakdown(by_category=dict(self._by_category))
