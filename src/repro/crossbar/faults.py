"""Fault models for crossbar arrays: permanent stuck-at and transient.

ReRAM arrays ship with defective cells and develop more as endurance
wears out (paper Sec. II-A).  :class:`CrossbarArray` already knows how
to *pin* a cell (:meth:`~repro.crossbar.array.CrossbarArray.inject_fault`);
this module is the model layer on top of that primitive:

* :class:`StuckAtFault` — one pinned cell as a value object;
* :func:`inject` / :func:`clear` — apply or remove a fault set;
* :func:`random_faults` — sample a defect population for an array;
* :func:`fault_map` — read back the faults an array currently carries;
* :class:`TransientFaultModel` / :class:`TransientFaultInjector` — the
  *parametric* fault layer: per-NOR output bit-flip probability, write
  failure probability, and read disturb, delivered through the MAGIC
  executors' ``fault_hook`` so faults strike mid-program rather than
  only as statically pinned cells.

The Monte Carlo *yield* analysis built on this model lives in
:mod:`repro.crossbar.yieldsim`; the service layer's fault-recovery path
(:mod:`repro.service.degrade`) uses :func:`inject` to corrupt one bank
way and prove that retry-on-healthy-bank restores bit-exact products.

Behaviour under the two kinds differs in a way that matters to fault
handling above:

* ``sa1`` cells silently corrupt MAGIC NOR outputs (the cell reads
  logic one no matter what was computed) — detectable only by checking
  results against an oracle;
* ``sa0`` cells in a NOR output row violate the MAGIC init
  precondition, so a strict array raises
  :class:`~repro.sim.exceptions.MagicProtocolError` mid-program —
  detectable as an exception.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crossbar.array import (
    FAULT_STUCK_AT_0,
    FAULT_STUCK_AT_1,
    CrossbarArray,
)
from repro.sim.exceptions import FaultInjectionError

#: The two supported stuck-at kinds, re-exported for callers that only
#: import the model layer.
KINDS = (FAULT_STUCK_AT_0, FAULT_STUCK_AT_1)


@dataclass(frozen=True)
class StuckAtFault:
    """One cell pinned to a constant value."""

    row: int
    col: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(f"unknown fault kind {self.kind!r}")

    @property
    def stuck_value(self) -> int:
        """The logic value the cell is pinned to (0 or 1)."""
        return 1 if self.kind == FAULT_STUCK_AT_1 else 0

    def apply(self, array: CrossbarArray) -> None:
        """Pin this fault's cell on *array*."""
        array.inject_fault(self.row, self.col, self.kind)


def inject(array: CrossbarArray, faults: Sequence[StuckAtFault]) -> None:
    """Pin every fault in *faults* on *array*.

    Later faults overwrite earlier ones at the same cell, matching the
    array's own semantics (a cell holds exactly one defect).
    """
    for fault in faults:
        fault.apply(array)


def clear(array: CrossbarArray) -> None:
    """Remove every injected fault from *array*.

    Cell values keep their last (possibly corrupted) state — healing a
    device does not rewind the data it damaged.
    """
    array.clear_faults()


def fault_map(array: CrossbarArray) -> Dict[Tuple[int, int], str]:
    """The faults *array* currently carries, as ``(row, col) -> kind``."""
    return array.faults


def random_faults(
    rows: int,
    cols: int,
    count: int,
    rng: random.Random,
    kind: Optional[str] = None,
) -> List[StuckAtFault]:
    """Sample *count* distinct-cell stuck-at faults for a rows x cols grid.

    When *kind* is ``None`` each fault flips a fair coin between
    ``sa0`` and ``sa1`` (manufacturing defects show both polarities).
    The returned list is not yet applied; pass it to :func:`inject`.
    """
    if count < 0:
        raise FaultInjectionError("fault count must be non-negative")
    if count > rows * cols:
        raise FaultInjectionError(
            f"cannot place {count} faults in {rows * cols} cells"
        )
    if kind is not None and kind not in KINDS:
        raise FaultInjectionError(f"unknown fault kind {kind!r}")
    # rng.sample draws distinct flat indices without materialising the
    # rows*cols cell list (campaign trials run this per trial on
    # arrays of thousands of cells).
    return [
        StuckAtFault(
            row=index // cols,
            col=index % cols,
            kind=kind
            if kind is not None
            else (FAULT_STUCK_AT_1 if rng.random() < 0.5 else FAULT_STUCK_AT_0),
        )
        for index in rng.sample(range(rows * cols), count)
    ]


# ----------------------------------------------------------------------
# Transient / parametric fault layer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransientFaultModel:
    """Per-operation upset probabilities of the parametric fault layer.

    All three mechanisms are memoryless per-cell Bernoulli events:

    ``nor_flip_prob``
        Probability that each cell written by a MAGIC NOR/NOT settles
        to the wrong level (half-selected disturb, insufficient
        switching margin).
    ``write_fail_prob``
        Probability that each cell driven by a WRITE/SHIFT pulse fails
        to switch, silently keeping its previous value.
    ``read_disturb_prob``
        Probability that each sensed cell's *stored* value flips after
        a READ (the sensed data itself is returned intact — disturb
        corrupts state, not the sense amplifier).
    """

    nor_flip_prob: float = 0.0
    write_fail_prob: float = 0.0
    read_disturb_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("nor_flip_prob", "write_fail_prob", "read_disturb_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be a probability, got {value}"
                )

    @property
    def active(self) -> bool:
        return (
            self.nor_flip_prob > 0
            or self.write_fail_prob > 0
            or self.read_disturb_prob > 0
        )


class TransientFaultInjector:
    """Seeded executor hook that strikes cells mid-program.

    Install as ``executor.fault_hook`` (scalar or batched path — the
    scalar executor forwards it to the batched one it spawns).  Each
    callback draws per-cell Bernoulli upsets from a private
    ``numpy`` generator, mutates the array *state* through the public
    :meth:`~repro.crossbar.array.CrossbarArray.physical_row`
    translation, then re-pins any permanent faults so the two fault
    layers compose.

    The injector counts the upsets it delivers (``flips_injected`` etc.)
    so campaigns can report how many trials were actually struck.
    """

    def __init__(self, model: TransientFaultModel, seed: int = 0):
        import numpy as np

        self._np = np
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.nor_flips = 0
        self.write_failures = 0
        self.read_disturbs = 0

    @property
    def upsets(self) -> int:
        """Total cell upsets delivered so far."""
        return self.nor_flips + self.write_failures + self.read_disturbs

    # -- hook callbacks -------------------------------------------------
    def _row_view(self, array, row: int):
        """Mutable bit view of logical *row* plus its write-back.

        Returns ``(bits, commit)``: (cols,) for a scalar array,
        (batch, cols) for the batched containers.  Arrays whose state
        is not an ndarray slice (the word-packed backend) expose an
        ``unpack_row``/``store_row`` pair; mutating the unpacked copy
        and committing it keeps the rng draw shapes — and therefore the
        upset pattern under a fixed seed — identical across the SIMD
        backends.
        """
        if hasattr(array, "unpack_row"):
            bits = array.unpack_row(row)
            return bits, (lambda: array.store_row(row, bits))
        phys = array.physical_row(row)
        state = array.state
        view = state[:, phys] if state.ndim == 3 else state[phys]
        return view, None

    def on_nor(self, array, out_row: int, mask) -> None:
        prob = self.model.nor_flip_prob
        if prob <= 0.0:
            return
        view, commit = self._row_view(array, out_row)
        hits = self.rng.random(view.shape) < prob
        if mask is not None:
            hits &= self._np.asarray(mask, dtype=bool)
        count = int(hits.sum())
        if count:
            view[hits] = ~view[hits]
            if commit is not None:
                commit()
            self.nor_flips += count
            array.repin_faults()

    def on_write(self, array, row: int, mask, pre) -> None:
        prob = self.model.write_fail_prob
        if prob <= 0.0 or pre is None:
            return
        view, commit = self._row_view(array, row)
        hits = self.rng.random(view.shape) < prob
        hits &= self._np.asarray(mask, dtype=bool)
        # A failed pulse leaves the cell at its pre-write value.
        hits &= view != pre
        count = int(hits.sum())
        if count:
            view[hits] = pre[hits]
            if commit is not None:
                commit()
            self.write_failures += count
            array.repin_faults()

    def on_read(self, array, row: int) -> None:
        prob = self.model.read_disturb_prob
        if prob <= 0.0:
            return
        view, commit = self._row_view(array, row)
        hits = self.rng.random(view.shape) < prob
        count = int(hits.sum())
        if count:
            view[hits] = ~view[hits]
            if commit is not None:
                commit()
            self.read_disturbs += count
            array.repin_faults()
