"""Stuck-at fault model for crossbar arrays.

ReRAM arrays ship with defective cells and develop more as endurance
wears out (paper Sec. II-A).  :class:`CrossbarArray` already knows how
to *pin* a cell (:meth:`~repro.crossbar.array.CrossbarArray.inject_fault`);
this module is the model layer on top of that primitive:

* :class:`StuckAtFault` — one pinned cell as a value object;
* :func:`inject` / :func:`clear` — apply or remove a fault set;
* :func:`random_faults` — sample a defect population for an array;
* :func:`fault_map` — read back the faults an array currently carries.

The Monte Carlo *yield* analysis built on this model lives in
:mod:`repro.crossbar.yieldsim`; the service layer's fault-recovery path
(:mod:`repro.service.degrade`) uses :func:`inject` to corrupt one bank
way and prove that retry-on-healthy-bank restores bit-exact products.

Behaviour under the two kinds differs in a way that matters to fault
handling above:

* ``sa1`` cells silently corrupt MAGIC NOR outputs (the cell reads
  logic one no matter what was computed) — detectable only by checking
  results against an oracle;
* ``sa0`` cells in a NOR output row violate the MAGIC init
  precondition, so a strict array raises
  :class:`~repro.sim.exceptions.MagicProtocolError` mid-program —
  detectable as an exception.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crossbar.array import (
    FAULT_STUCK_AT_0,
    FAULT_STUCK_AT_1,
    CrossbarArray,
)
from repro.sim.exceptions import FaultInjectionError

#: The two supported stuck-at kinds, re-exported for callers that only
#: import the model layer.
KINDS = (FAULT_STUCK_AT_0, FAULT_STUCK_AT_1)


@dataclass(frozen=True)
class StuckAtFault:
    """One cell pinned to a constant value."""

    row: int
    col: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(f"unknown fault kind {self.kind!r}")

    @property
    def stuck_value(self) -> int:
        """The logic value the cell is pinned to (0 or 1)."""
        return 1 if self.kind == FAULT_STUCK_AT_1 else 0

    def apply(self, array: CrossbarArray) -> None:
        """Pin this fault's cell on *array*."""
        array.inject_fault(self.row, self.col, self.kind)


def inject(array: CrossbarArray, faults: Sequence[StuckAtFault]) -> None:
    """Pin every fault in *faults* on *array*.

    Later faults overwrite earlier ones at the same cell, matching the
    array's own semantics (a cell holds exactly one defect).
    """
    for fault in faults:
        fault.apply(array)


def clear(array: CrossbarArray) -> None:
    """Remove every injected fault from *array*.

    Cell values keep their last (possibly corrupted) state — healing a
    device does not rewind the data it damaged.
    """
    array.clear_faults()


def fault_map(array: CrossbarArray) -> Dict[Tuple[int, int], str]:
    """The faults *array* currently carries, as ``(row, col) -> kind``."""
    return dict(array._faults)


def random_faults(
    rows: int,
    cols: int,
    count: int,
    rng: random.Random,
    kind: Optional[str] = None,
) -> List[StuckAtFault]:
    """Sample *count* distinct-cell stuck-at faults for a rows x cols grid.

    When *kind* is ``None`` each fault flips a fair coin between
    ``sa0`` and ``sa1`` (manufacturing defects show both polarities).
    The returned list is not yet applied; pass it to :func:`inject`.
    """
    if count < 0:
        raise FaultInjectionError("fault count must be non-negative")
    if count > rows * cols:
        raise FaultInjectionError(
            f"cannot place {count} faults in {rows * cols} cells"
        )
    if kind is not None and kind not in KINDS:
        raise FaultInjectionError(f"unknown fault kind {kind!r}")
    cells = [(r, c) for r in range(rows) for c in range(cols)]
    rng.shuffle(cells)
    return [
        StuckAtFault(
            row=row,
            col=col,
            kind=kind
            if kind is not None
            else (FAULT_STUCK_AT_1 if rng.random() < 0.5 else FAULT_STUCK_AT_0),
        )
        for row, col in cells[:count]
    ]
