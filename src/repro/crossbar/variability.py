"""Analog variability and sense-margin analysis for MAGIC NOR.

The behavioural array treats NOR as ideal; real memristors have
resistance spread, and the MAGIC output cell switches only if the
voltage divider formed by the input devices and the output device
crosses the switching threshold.  This module analyses that divider:

* :func:`nor_output_voltage` — the voltage across the output memristor
  of a k-input MAGIC NOR given each input's resistance (inputs in
  parallel between V0 and the output device to ground);
* :func:`worst_case_margins` — the two critical cases: all inputs OFF
  (output must NOT switch) and exactly one input ON (output MUST
  switch), as functions of fan-in;
* :func:`max_safe_fanin` — the largest fan-in with positive nominal
  margins (bounded by the R_off/R_on ratio: the hold case fails once k
  parallel OFF devices conduct like an ON one);
* :func:`switching_failure_probability` / :func:`variability_safe_fanin`
  — Monte Carlo with lognormal resistance spread.

Two findings the study surfaces:

1. with a healthy R_off/R_on ratio (1000), *nominal* margins allow
   large fan-in — the binding constraint is **variability on the
   switch case** (output and input ON-resistances divide V0 nearly
   evenly), which is almost fan-in-independent and instead dictates a
   drive voltage well above ``2 * V_th``;
2. for degraded devices (low ratio), the hold margin collapses with
   fan-in — the regime where small-fan-in gate libraries become
   mandatory.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crossbar.device import DeviceModel
from repro.sim.exceptions import DesignError


def nor_output_voltage(
    input_resistances: Sequence[float],
    output_resistance: float,
    v0: float,
) -> float:
    """Voltage across the output memristor during a MAGIC NOR pulse.

    Electrical model (Kvatinsky et al. [15]): every input device is
    connected from the driven word line (V0) to the output row's word
    line, which is grounded through the output device — a divider of
    the parallel input combination against the output resistance.
    """
    if not input_resistances:
        raise DesignError("NOR needs at least one input device")
    if min(input_resistances) <= 0 or output_resistance <= 0:
        raise DesignError("resistances must be positive")
    conductance = sum(1.0 / r for r in input_resistances)
    parallel = 1.0 / conductance
    return v0 * output_resistance / (parallel + output_resistance)


@dataclass(frozen=True)
class NorMargins:
    """Sense margins of a k-input MAGIC NOR.

    ``switch_margin`` — how far above threshold the output voltage sits
    when exactly one input is ON (must be positive for the output to
    reset to 0).  ``hold_margin`` — how far below threshold it sits
    when all inputs are OFF (must be positive for the output to retain
    its 1).  Volts.
    """

    fan_in: int
    switch_margin: float
    hold_margin: float

    @property
    def functional(self) -> bool:
        return self.switch_margin > 0 and self.hold_margin > 0


def worst_case_margins(
    fan_in: int, device: DeviceModel = None, v0: float = 3.2
) -> NorMargins:
    """Margins at nominal resistances for a *fan_in*-input NOR.

    The hold case worsens with fan-in: k parallel OFF devices halve,
    third, ... the series resistance, pushing more of V0 onto the
    (logic-1, low-R... the freshly initialised output device is in the
    low-resistance state) output cell even when every input is 0.
    """
    if fan_in < 1:
        raise DesignError("fan-in must be at least 1")
    device = device if device is not None else DeviceModel()
    threshold = abs(device.v_threshold)
    # Output cell is initialised to logic 1 = R_on.
    switch_v = nor_output_voltage(
        [device.r_on_ohm] + [device.r_off_ohm] * (fan_in - 1),
        device.r_on_ohm,
        v0,
    )
    hold_v = nor_output_voltage(
        [device.r_off_ohm] * fan_in, device.r_on_ohm, v0
    )
    return NorMargins(
        fan_in=fan_in,
        switch_margin=switch_v - threshold,
        hold_margin=threshold - hold_v,
    )


def max_safe_fanin(
    device: DeviceModel = None, v0: float = 3.2, limit: int = 64
) -> int:
    """Largest fan-in with positive margins at nominal resistances."""
    best = 0
    for fan_in in range(1, limit + 1):
        if worst_case_margins(fan_in, device, v0).functional:
            best = fan_in
        else:
            break
    if best == 0:
        raise DesignError("device/voltage combination cannot implement NOR")
    return best


def switching_failure_probability(
    fan_in: int,
    sigma: float = 0.15,
    trials: int = 2000,
    device: DeviceModel = None,
    v0: float = 3.2,
    seed: int = 0xA11A,
) -> Tuple[float, float]:
    """(P[fail to switch], P[fail to hold]) under lognormal spread.

    Each device's resistance is drawn lognormally around its nominal
    state with multiplicative spread ``sigma`` (literature reports
    10-30% cycle-to-cycle variation for HfOx).
    """
    if not 0 <= sigma < 1.5:
        raise DesignError("sigma out of the modelled range")
    if trials < 1:
        raise DesignError("need at least one trial")
    device = device if device is not None else DeviceModel()
    rng = random.Random(seed)
    threshold = abs(device.v_threshold)

    def draw(nominal: float) -> float:
        return nominal * math.exp(rng.gauss(0.0, sigma))

    switch_failures = 0
    hold_failures = 0
    for _ in range(trials):
        # Case A: one input ON -> output must switch.
        inputs = [draw(device.r_on_ohm)] + [
            draw(device.r_off_ohm) for _ in range(fan_in - 1)
        ]
        v = nor_output_voltage(inputs, draw(device.r_on_ohm), v0)
        if v < threshold:
            switch_failures += 1
        # Case B: all inputs OFF -> output must hold its 1.
        inputs = [draw(device.r_off_ohm) for _ in range(fan_in)]
        v = nor_output_voltage(inputs, draw(device.r_on_ohm), v0)
        if v >= threshold:
            hold_failures += 1
    return switch_failures / trials, hold_failures / trials


def fanin_study(
    max_fanin: int = 8, device: DeviceModel = None, v0: float = 3.2
) -> List[NorMargins]:
    """Margins across fan-ins (the table behind the 2-input choice)."""
    return [
        worst_case_margins(fan_in, device, v0)
        for fan_in in range(1, max_fanin + 1)
    ]


def variability_safe_fanin(
    sigma: float = 0.15,
    tolerance: float = 1e-2,
    device: DeviceModel = None,
    v0: float = 3.2,
    limit: int = 16,
    trials: int = 2000,
) -> int:
    """Largest fan-in whose Monte Carlo failure rates stay below
    *tolerance* — the variability-aware gate-library limit (capped at
    *limit*; healthy devices saturate the cap)."""
    best = 0
    for fan_in in range(1, limit + 1):
        p_switch, p_hold = switching_failure_probability(
            fan_in, sigma=sigma, trials=trials, device=device, v0=v0
        )
        if p_switch <= tolerance and p_hold <= tolerance:
            best = fan_in
        else:
            break
    if best == 0:
        raise DesignError("no functional fan-in under this variability")
    return best


def render(device: DeviceModel = None, v0: float = 3.2) -> str:
    """Text report of the fan-in margin study."""
    from repro.eval.report import format_table

    rows = []
    for margins in fanin_study(8, device, v0):
        p_switch, p_hold = switching_failure_probability(
            margins.fan_in, sigma=0.15, trials=1000, device=device, v0=v0
        )
        rows.append(
            (
                margins.fan_in,
                round(margins.switch_margin, 3),
                round(margins.hold_margin, 3),
                f"{p_switch:.1%}",
                "yes" if margins.functional else "NO",
            )
        )
    safe_nominal = max_safe_fanin(device, v0)
    safe_var = variability_safe_fanin(device=device, v0=v0)
    table = format_table(
        ("fan-in", "switch margin (V)", "hold margin (V)",
         "P[switch fail] @15% spread", "functional"),
        rows,
        title="MAGIC NOR sense margins vs fan-in",
    )
    degraded = DeviceModel(r_on_ohm=1e3, r_off_ohm=2e4)   # ratio 20
    degraded_limit = max_safe_fanin(degraded, v0)
    return table + (
        f"\nnominal max fan-in {safe_nominal}; variability-aware "
        f"(15% spread, 1% tolerance): {safe_var}; degraded device "
        f"(R_off/R_on = 20): {degraded_limit} — low-ratio devices are "
        "the regime that forces small-fan-in gate libraries"
    )
