"""Periphery-circuit model: drivers, sense amplifiers, shifters.

The paper's Table I counts memory cells, the CIM literature's standard
figure of merit; real arrays also spend area on periphery — word-line
drivers, the write circuit, bit-line sense amplifiers (Fig. 1a), and
the paper's dedicated shift circuit (Sec. IV-B).  This module estimates
that overhead so users can sanity-check the cells-only comparison:

* every row needs a word-line driver;
* every column needs a sense amplifier + write driver pair;
* stages that shift (the Kogge-Stone arrays) add a barrel-shift lane
  per column;
* one controller block per design.

Unit costs are expressed in *cell-equivalent* area (F^2 normalised to
a 4F^2 ReRAM cell), with defaults in the range reported for 1T1R/1S1R
peripheral studies.  The correction *sharpens* the paper's practicality
argument: sense amplifiers are a per-column cost, and a single-row
design like MultPIM [9] cannot amortise its 5,369 column amplifiers
over multiple word lines, so its periphery dwarfs its cell count (~30x
overhead versus ~3.5x for our multi-row subarrays) — the cells-only
Table I metric actually flatters single-row layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from typing import TYPE_CHECKING

from repro.sim.exceptions import DesignError

if TYPE_CHECKING:  # imported lazily; this module sits above karatsuba
    from repro.karatsuba.floorplan import Floorplan


@dataclass(frozen=True)
class PeripheryModel:
    """Unit costs in cell-equivalents (one 4F^2 ReRAM cell = 1.0)."""

    wordline_driver_per_row: float = 12.0
    sense_amp_per_col: float = 20.0
    write_driver_per_col: float = 10.0
    shifter_per_col: float = 8.0
    controller_block: float = 600.0

    def __post_init__(self) -> None:
        for value in (
            self.wordline_driver_per_row,
            self.sense_amp_per_col,
            self.write_driver_per_col,
            self.shifter_per_col,
            self.controller_block,
        ):
            if value < 0:
                raise DesignError("periphery unit costs must be non-negative")


@dataclass(frozen=True)
class PeripheryEstimate:
    """Cell-equivalent area breakdown of one floorplan."""

    cells: int
    drivers: float
    sense_amps: float
    write_drivers: float
    shifters: float
    controller: float

    @property
    def periphery_total(self) -> float:
        return (
            self.drivers
            + self.sense_amps
            + self.write_drivers
            + self.shifters
            + self.controller
        )

    @property
    def total(self) -> float:
        return self.cells + self.periphery_total

    @property
    def overhead_factor(self) -> float:
        """Total area relative to the cells-only figure."""
        return self.total / self.cells if self.cells else 0.0


def estimate(
    plan: "Floorplan",
    model: PeripheryModel = PeripheryModel(),
    shifting_subarrays: List[str] = None,
) -> PeripheryEstimate:
    """Periphery estimate for *plan*.

    *shifting_subarrays* names the subarrays that need the barrel-shift
    lane (default: those hosting Kogge-Stone adders — every name
    containing ``compute``).
    """
    if shifting_subarrays is None:
        shifting_subarrays = [
            sub.name for sub in plan.subarrays if "compute" in sub.name
        ]
    drivers = 0.0
    sense = 0.0
    write = 0.0
    shift = 0.0
    for sub in plan.subarrays:
        drivers += model.wordline_driver_per_row * sub.rows
        sense += model.sense_amp_per_col * sub.cols
        write += model.write_driver_per_col * sub.cols
        if sub.name in shifting_subarrays:
            shift += model.shifter_per_col * sub.cols
    return PeripheryEstimate(
        cells=plan.total_cells,
        drivers=drivers,
        sense_amps=sense,
        write_drivers=write,
        shifters=shift,
        controller=model.controller_block,
    )


def comparison(n_bits: int = 384, model: PeripheryModel = PeripheryModel()) -> str:
    """Cells-only vs periphery-corrected area for ours and MultPIM.

    The correction reverses the raw-cells ranking: our 4.7x cell-count
    disadvantage versus [9] becomes a ~2x *advantage* once each design
    pays for its sense amplifiers, because [9] needs one per cell of
    its single row.
    """
    from repro.eval.report import format_table
    from repro.karatsuba import floorplan

    rows = []
    estimates = {}
    for name, plan in (
        ("ours", floorplan.ours(n_bits)),
        ("multpim [9]", floorplan.multpim(n_bits)),
    ):
        est = estimate(plan, model)
        estimates[name] = est
        rows.append(
            (
                name,
                est.cells,
                round(est.periphery_total),
                round(est.total),
                round(est.overhead_factor, 2),
            )
        )
    cells_ratio = estimates["ours"].cells / estimates["multpim [9]"].cells
    total_ratio = estimates["ours"].total / estimates["multpim [9]"].total
    table = format_table(
        ("design", "cells", "periphery (cell-eq)", "total", "overhead"),
        rows,
        title=f"Periphery-corrected area at n = {n_bits}",
    )
    return (
        table
        + f"\narea ratio ours/[9]: {cells_ratio:.1f}x cells-only, "
        f"{total_ratio:.1f}x periphery-corrected"
    )
