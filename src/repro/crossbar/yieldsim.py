"""Monte Carlo fault/yield analysis for CIM arithmetic blocks.

ReRAM arrays ship with stuck-at cells and develop more as endurance
wears out (Sec. II-A).  This module measures how the paper's
Kogge-Stone adder degrades under stuck-at faults:

* :func:`adder_fault_trial` — one trial: inject random stuck-at cells
  into a standalone adder array, run random additions, report whether
  all results were correct;
* :func:`yield_curve` — failure probability versus fault density;
* :func:`cell_criticality` — exhaustive single-fault scan classifying
  every cell of the adder as critical (any fault breaks results) or
  tolerated for a fixed operand set.

Faulty NOR outputs violate the MAGIC init precondition, so trials run
with ``strict_magic`` disabled — the array then models the electrical
reality of a defective cell (it simply holds its stuck value).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crossbar.array import (
    FAULT_STUCK_AT_0,
    FAULT_STUCK_AT_1,
    CrossbarArray,
)
from repro.sim.exceptions import DesignError, SimulationError


def _build_adder(width: int) -> Tuple["KoggeStoneAdder", CrossbarArray]:
    # Imported lazily: this analysis module sits above the arithmetic
    # layer, which itself builds on the crossbar package.
    from repro.arith.koggestone import (
        SCRATCH_ROWS,
        KoggeStoneAdder,
        KoggeStoneLayout,
    )

    array = CrossbarArray(3 + SCRATCH_ROWS, width + 1, strict_magic=False)
    layout = KoggeStoneLayout(
        width=width,
        col0=0,
        x_row=0,
        y_row=1,
        out_row=2,
        scratch_rows=tuple(range(3, 3 + SCRATCH_ROWS)),
    )
    return KoggeStoneAdder(layout), array


def _run_additions(
    adder: "KoggeStoneAdder",
    array: CrossbarArray,
    operand_pairs: List[Tuple[int, int]],
) -> bool:
    """True when every addition returns the correct sum."""
    from repro.magic.executor import MagicExecutor

    executor = MagicExecutor(array)
    first = True
    for x, y in operand_pairs:
        try:
            result = adder.run(executor, x, y, "add", first_use=first)
        except SimulationError:
            return False
        first = False
        if result != x + y:
            return False
    return True


@dataclass(frozen=True)
class FaultTrial:
    """Outcome of one randomized fault-injection trial."""

    faults: int
    correct: bool


def adder_fault_trial(
    width: int,
    fault_count: int,
    rng: random.Random,
    additions: int = 4,
) -> FaultTrial:
    """Inject *fault_count* random stuck-at cells and test the adder."""
    if fault_count < 0:
        raise DesignError("fault count must be non-negative")
    adder, array = _build_adder(width)
    cells = [(r, c) for r in range(array.rows) for c in range(array.cols)]
    rng.shuffle(cells)
    for row, col in cells[:fault_count]:
        kind = FAULT_STUCK_AT_1 if rng.random() < 0.5 else FAULT_STUCK_AT_0
        array.inject_fault(row, col, kind)
    pairs = [
        (rng.getrandbits(width), rng.getrandbits(width))
        for _ in range(additions)
    ]
    return FaultTrial(
        faults=fault_count, correct=_run_additions(adder, array, pairs)
    )


def yield_curve(
    width: int = 16,
    densities: Tuple[float, ...] = (0.0, 0.005, 0.01, 0.02, 0.05),
    trials: int = 20,
    seed: int = 0xFA17,
) -> List[Tuple[float, float]]:
    """(fault density, survival probability) sampled by Monte Carlo."""
    rng = random.Random(seed)
    adder, array = _build_adder(width)
    total_cells = array.cells
    curve: List[Tuple[float, float]] = []
    for density in densities:
        fault_count = round(density * total_cells)
        survived = sum(
            adder_fault_trial(width, fault_count, rng).correct
            for _ in range(trials)
        )
        curve.append((density, survived / trials))
    return curve


@dataclass(frozen=True)
class CriticalityReport:
    """Single-fault sensitivity of the adder array."""

    width: int
    total_cells: int
    critical_cells: int
    tolerated_cells: int

    @property
    def critical_fraction(self) -> float:
        return self.critical_cells / self.total_cells


def cell_criticality(
    width: int = 8,
    operand_pairs: Optional[List[Tuple[int, int]]] = None,
    kind: str = FAULT_STUCK_AT_0,
) -> CriticalityReport:
    """Exhaustive single-stuck-at scan over every cell.

    A cell is *critical* when a single fault there corrupts at least
    one of the probe additions.  Operand rows and the carry chain are
    expected to be critical; some scratch cells are tolerated because
    the probe set never exercises them with a differing value.
    """
    if operand_pairs is None:
        top = (1 << width) - 1
        operand_pairs = [(top, 1), (0x55 & top, 0x2A & top), (top, top)]
    critical = 0
    tolerated = 0
    probe_adder, probe_array = _build_adder(width)
    for row in range(probe_array.rows):
        for col in range(probe_array.cols):
            adder, array = _build_adder(width)
            array.inject_fault(row, col, kind)
            if _run_additions(adder, array, list(operand_pairs)):
                tolerated += 1
            else:
                critical += 1
    return CriticalityReport(
        width=width,
        total_cells=probe_array.cells,
        critical_cells=critical,
        tolerated_cells=tolerated,
    )
