"""ReRAM crossbar substrate: devices, arrays, endurance, faults, energy."""

from repro.crossbar.array import (
    FAULT_STUCK_AT_0,
    FAULT_STUCK_AT_1,
    BatchedCrossbarArray,
    CrossbarArray,
    WordPackedCrossbarArray,
)
from repro.crossbar.faults import (
    StuckAtFault,
    TransientFaultInjector,
    TransientFaultModel,
    clear as clear_faults,
    fault_map,
    inject as inject_faults,
    random_faults,
)
from repro.crossbar.device import (
    ENDURANCE_HIGH_CYCLES,
    ENDURANCE_LOW_CYCLES,
    DeviceModel,
    Memristor,
)
from repro.crossbar.endurance import (
    EnduranceReport,
    WearLevelingController,
    analyze,
    row_write_histogram,
)
from repro.crossbar.energy import EnergyBreakdown, EnergyModel
from repro.crossbar import variability
from repro.crossbar.periphery import (
    PeripheryEstimate,
    PeripheryModel,
)
from repro.crossbar.yieldsim import (
    CriticalityReport,
    FaultTrial,
    adder_fault_trial,
    cell_criticality,
    yield_curve,
)

__all__ = [
    "BatchedCrossbarArray",
    "WordPackedCrossbarArray",
    "CriticalityReport",
    "CrossbarArray",
    "PeripheryEstimate",
    "variability",
    "PeripheryModel",
    "FaultTrial",
    "adder_fault_trial",
    "cell_criticality",
    "yield_curve",
    "DeviceModel",
    "ENDURANCE_HIGH_CYCLES",
    "ENDURANCE_LOW_CYCLES",
    "EnduranceReport",
    "EnergyBreakdown",
    "EnergyModel",
    "FAULT_STUCK_AT_0",
    "FAULT_STUCK_AT_1",
    "Memristor",
    "StuckAtFault",
    "TransientFaultInjector",
    "TransientFaultModel",
    "WearLevelingController",
    "analyze",
    "clear_faults",
    "fault_map",
    "inject_faults",
    "random_faults",
    "row_write_histogram",
]
