"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, text left-aligned; floats print with up
    to one decimal unless they are integral.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
                return f"{int(round(value)):,}"
            return f"{value:,.1f}"
        if isinstance(value, int):
            return f"{value:,}"
        return str(value)

    rendered: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]

    def align(text: str, width: int, numeric: bool) -> str:
        return text.rjust(width) if numeric else text.ljust(width)

    numeric_cols = [
        all(
            isinstance(row[i], (int, float))
            for row in rows
        ) and bool(rows)
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(align(headers[i], widths[i], False) for i in range(len(headers)))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(
                align(row[i], widths[i], numeric_cols[i]) for i in range(len(row))
            )
        )
    return "\n".join(lines)


def format_ratio(value: float) -> str:
    """Render a speedup/improvement factor the way the paper does."""
    if value >= 100:
        return f"{value:,.0f}x"
    if value >= 10:
        return f"{value:.0f}x"
    return f"{value:.1f}x"
