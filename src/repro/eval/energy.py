"""Energy evaluation of the CIM designs.

The paper's motivation is energy lost to data movement on von Neumann
machines; its evaluation reports cycles and cells, not joules.  This
module adds a first-order energy account on top of the reproduction:

* **ours** — measured directly from the simulator: the crossbar charges
  every set/reset pulse and sense event with the device model's
  per-event energies, so one simulated multiplication yields a real
  per-stage breakdown.
* **baselines** — modelled from their op-count structure (each design's
  dominant loop times the same per-event costs), which is the
  resolution their papers support.

All numbers use the same :class:`~repro.crossbar.device.DeviceModel`,
so the *ratios* are meaningful even though absolute joules depend on
technology parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.crossbar.device import DeviceModel
from repro.karatsuba.design import KaratsubaCimMultiplier
from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one n-bit multiplication, in femtojoules."""

    design: str
    n_bits: int
    energy_fj: float
    method: str                  # 'measured' or 'modelled'

    @property
    def energy_pj(self) -> float:
        return self.energy_fj / 1e3

    @property
    def energy_nj(self) -> float:
        return self.energy_fj / 1e6


def measure_ours(
    n_bits: int, device: DeviceModel = None, samples: int = 2
) -> Dict[str, float]:
    """Simulate *samples* multiplications and return the average
    per-stage energy breakdown (femtojoules per multiplication)."""
    import random

    if samples < 1:
        raise DesignError("need at least one sample")
    device = device if device is not None else DeviceModel()
    cim = KaratsubaCimMultiplier(n_bits, device=device)
    controller = cim.pipeline.controller
    rng = random.Random(0xE0E0)
    before = {
        "precompute": controller.precompute.array.energy_fj,
        "postcompute": controller.postcompute.array.energy_fj,
    }
    for _ in range(samples):
        cim.multiply(rng.getrandbits(n_bits), rng.getrandbits(n_bits))
    breakdown = {
        "precompute": (
            controller.precompute.array.energy_fj - before["precompute"]
        ) / samples,
        "postcompute": (
            controller.postcompute.array.energy_fj - before["postcompute"]
        ) / samples,
    }
    # The multiplication stage charges writes per cell image; convert
    # with the same per-event cost (every charged write is one pulse).
    mult_writes = sum(
        row.cell_writes.sum() for row in controller.multiply_stage.rows.values()
    )
    breakdown["multiply"] = (
        float(mult_writes) * device.e_reset_fj / samples
    )
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def estimate_ours(n_bits: int, device: DeviceModel = None) -> EnergyEstimate:
    """Measured per-multiplication energy of our design."""
    breakdown = measure_ours(n_bits, device=device)
    return EnergyEstimate(
        design="ours",
        n_bits=n_bits,
        energy_fj=breakdown["total"],
        method="measured",
    )


def _modelled(design: str, n_bits: int, pulses: float, senses: float,
              device: DeviceModel) -> EnergyEstimate:
    energy = pulses * device.e_reset_fj + senses * device.e_read_fj
    return EnergyEstimate(
        design=design, n_bits=n_bits, energy_fj=energy, method="modelled"
    )


def estimate_baselines(
    n_bits: int, device: DeviceModel = None
) -> List[EnergyEstimate]:
    """First-order energy models of the four Table I baselines.

    Pulse counts follow each design's dominant structure:

    * [7] Haj-Ali: 13 NOR steps per bit per iteration over an n-bit
      window, each switching ~half the window's output cells.
    * [6] Radakovits: comparable serial structure with IMPLY's
      destructive writes (~1.5 pulses per step-bit).
    * [8] Lakshmi: every partial-product cell written twice
      (the design's own endurance argument) across 8n^2 cells.
    * [9] Leitersdorf: 14 steps per iteration across n partitions, one
      pulse per step-partition, n iterations.
    """
    device = device if device is not None else DeviceModel()
    n = n_bits
    return [
        _modelled("radakovits2020", n, 1.5 * 10 * n * n, 2 * n, device),
        _modelled("hajali2018", n, 0.5 * 13 * n * n, 2 * n, device),
        _modelled("lakshmi2022", n, 2 * 8 * n * n, 4 * n, device),
        _modelled("leitersdorf2022", n, 14 * n * n * 0.5, 2 * n, device),
    ]


def comparison_table(n_bits: int, device: DeviceModel = None) -> List[EnergyEstimate]:
    """Ours (measured) plus the four baselines (modelled)."""
    rows = estimate_baselines(n_bits, device=device)
    rows.append(estimate_ours(n_bits, device=device))
    return rows


def latency_of(design: str, n_bits: int) -> int:
    """Unpipelined latency of *design* (for the energy-delay product)."""
    from repro.baselines import hajali, lakshmi, leitersdorf, radakovits
    from repro.karatsuba import cost

    table = {
        "radakovits2020": radakovits.latency_cc,
        "hajali2018": hajali.latency_cc,
        "lakshmi2022": lakshmi.latency_cc,
        "leitersdorf2022": leitersdorf.latency_cc,
        "ours": lambda n: cost.design_cost(n, 2).latency_cc,
    }
    return table[design](n_bits)


def render(n_bits: int = 64) -> str:
    """Text table of the energy comparison.

    Row-parallel MAGIC switches many cells per cycle, so our design's
    raw switching energy exceeds the mostly-serial baselines' — it
    simply spends that energy 50-900x faster.  The energy-delay product
    (EDP) column is therefore the comparable figure; our design wins it
    against every serial baseline.
    """
    from repro.eval.report import format_table

    rows = comparison_table(n_bits)
    ours = next(r for r in rows if r.design == "ours")
    ours_edp = ours.energy_fj * latency_of("ours", n_bits)
    table_rows = []
    for r in rows:
        edp = r.energy_fj * latency_of(r.design, n_bits)
        table_rows.append(
            (
                r.design,
                round(r.energy_pj, 1),
                round(r.energy_fj / ours.energy_fj, 2),
                round(edp / 1e9, 2),
                round(edp / ours_edp, 2),
                r.method,
            )
        )
    return format_table(
        headers=(
            "design", "energy/mult (pJ)", "E vs ours",
            "EDP (pJ*Mcc)", "EDP vs ours", "method",
        ),
        rows=table_rows,
        title=(
            f"Energy per {n_bits}-bit multiplication "
            "(device-model units; EDP = energy x latency)"
        ),
    )
