"""Terminal plotting for the evaluation harness.

Renders multi-series scatter/line data as ASCII, with optional log
scales — enough to eyeball Fig. 4-style curves and scaling fits without
leaving the terminal (the repository is plotting-library-free by
design: everything must run offline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.exceptions import DesignError


@dataclass
class Series:
    """One named curve: sorted (x, y) points and a single-char marker."""

    name: str
    points: List[Tuple[float, float]]
    marker: str = "*"

    def __post_init__(self) -> None:
        if not self.points:
            raise DesignError(f"series {self.name!r} has no points")
        if len(self.marker) != 1:
            raise DesignError("marker must be a single character")
        self.points = sorted(self.points)


@dataclass
class AsciiPlot:
    """A fixed-size character canvas with data-space mapping."""

    width: int = 64
    height: int = 18
    log_x: bool = False
    log_y: bool = False
    title: str = ""
    series: List[Series] = field(default_factory=list)

    def add_series(
        self, name: str, points, marker: Optional[str] = None
    ) -> "AsciiPlot":
        markers = "123456789abcdef"
        chosen = marker or markers[len(self.series) % len(markers)]
        self.series.append(Series(name=name, points=list(points), marker=chosen))
        return self

    # ------------------------------------------------------------------
    def _transform(self, value: float, log: bool) -> float:
        if log:
            if value <= 0:
                raise DesignError("log-scale axes need positive values")
            return math.log10(value)
        return value

    def render(self) -> str:
        if not self.series:
            raise DesignError("nothing to plot")
        xs = [
            self._transform(x, self.log_x)
            for s in self.series
            for x, _ in s.points
        ]
        ys = [
            self._transform(y, self.log_y)
            for s in self.series
            for _, y in s.points
        ]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for s in self.series:
            for x, y in s.points:
                tx = self._transform(x, self.log_x)
                ty = self._transform(y, self.log_y)
                col = round((tx - x_lo) / x_span * (self.width - 1))
                row = round((ty - y_lo) / y_span * (self.height - 1))
                grid[self.height - 1 - row][col] = s.marker
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        y_top = f"{(10 ** y_hi if self.log_y else y_hi):,.4g}"
        y_bot = f"{(10 ** y_lo if self.log_y else y_lo):,.4g}"
        lines.append(f"{y_top:>10} +" + "-" * self.width + "+")
        for row in grid:
            lines.append(f"{'':>10} |" + "".join(row) + "|")
        lines.append(f"{y_bot:>10} +" + "-" * self.width + "+")
        x_left = f"{(10 ** x_lo if self.log_x else x_lo):,.4g}"
        x_right = f"{(10 ** x_hi if self.log_x else x_hi):,.4g}"
        pad = self.width - len(x_left) - len(x_right)
        lines.append(f"{'':>12}{x_left}{'':<{max(pad, 1)}}{x_right}")
        legend = "  ".join(f"{s.marker}={s.name}" for s in self.series)
        lines.append(f"{'':>12}{legend}")
        return "\n".join(lines)


def plot_fig4(width: int = 64, height: int = 16) -> str:
    """Fig. 4 as an ASCII log-log plot (one marker per unroll depth)."""
    from repro.eval import fig4

    curves = fig4.series()
    plot = AsciiPlot(
        width=width,
        height=height,
        log_x=True,
        log_y=True,
        title="Fig. 4 - ATP vs n (log-log; digits mark unroll depth L)",
    )
    for depth in sorted(curves):
        plot.add_series(
            f"L={depth}",
            [(float(n), atp) for n, atp in sorted(curves[depth].items())],
            marker=str(depth),
        )
    return plot.render()


def plot_scaling(metric: str = "latency", width: int = 64) -> str:
    """Design latencies/areas vs n (the Sec. II-C scaling picture)."""
    from repro.eval.scaling import _DESIGNS

    plot = AsciiPlot(
        width=width,
        height=16,
        log_x=True,
        log_y=True,
        title=f"Sec. II-C - {metric} scaling (log-log)",
    )
    sizes = (64, 128, 256, 512, 1024)
    markers = {"radakovits2020": "r", "hajali2018": "h", "lakshmi2022": "w",
               "leitersdorf2022": "m", "ours": "K"}
    for design, (area_fn, latency_fn) in _DESIGNS.items():
        fn = area_fn if metric == "area" else latency_fn
        plot.add_series(
            design,
            [(float(n), float(fn(n))) for n in sizes],
            marker=markers[design],
        )
    return plot.render()
