"""One-shot artifact generation: every reproduced table and figure.

``write_all(out_dir)`` renders each artefact to a text file and a
machine-readable JSON companion, so downstream analyses (plots, paper
comparisons) don't need to re-run the harness.  Exposed on the CLI as
``python -m repro artifacts --out <dir>``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List

from repro.eval import energy, explore_report, fig4, scaling, table1


def _write(path: Path, text: str) -> None:
    path.write_text(text if text.endswith("\n") else text + "\n")


def write_table1(out_dir: Path) -> List[str]:
    entries = table1.generate()
    _write(out_dir / "table1.txt", table1.render(entries))
    payload = {
        "rows": [asdict(e) for e in entries],
        "headline_factors": table1.headline_factors(),
        "row_length_vs_multpim_384": table1.row_length_vs_multpim(384),
        "write_reduction_vs_multpim_384": table1.write_reduction_vs_multpim(384),
        "errors_vs_paper": table1.compare_with_paper(entries),
    }
    (out_dir / "table1.json").write_text(json.dumps(payload, indent=2))
    return ["table1.txt", "table1.json"]


def write_fig4(out_dir: Path) -> List[str]:
    points = fig4.generate()
    _write(out_dir / "fig4.txt", fig4.render(points))
    payload = {
        "points": [asdict(p) for p in points],
        "geomean_atp_by_depth": fig4.geomean_atp_by_depth(),
        "best_overall_depth": fig4.best_overall_depth(),
    }
    (out_dir / "fig4.json").write_text(json.dumps(payload, indent=2))
    return ["fig4.txt", "fig4.json"]


def write_explore(out_dir: Path) -> List[str]:
    _write(out_dir / "sec3_exploration.txt", explore_report.render(256))
    counts = explore_report.karatsuba_counts()
    payload = {
        "karatsuba_counts": {str(k): v for k, v in counts.items()},
        "toom_interpolation_mults": {
            "3": 25, "4": 49, "5": 81,
        },
    }
    (out_dir / "sec3_exploration.json").write_text(
        json.dumps(payload, indent=2)
    )
    return ["sec3_exploration.txt", "sec3_exploration.json"]


def write_scaling(out_dir: Path) -> List[str]:
    _write(out_dir / "scaling.txt", scaling.render())
    payload = [asdict(f) | {"class": f.classify()} for f in scaling.scaling_fits()]
    (out_dir / "scaling.json").write_text(json.dumps(payload, indent=2))
    return ["scaling.txt", "scaling.json"]


def write_energy(out_dir: Path, n_bits: int = 64) -> List[str]:
    _write(out_dir / "energy.txt", energy.render(n_bits))
    payload = [asdict(e) for e in energy.comparison_table(n_bits)]
    (out_dir / "energy.json").write_text(json.dumps(payload, indent=2))
    return ["energy.txt", "energy.json"]


def write_floorplan(out_dir: Path, n_bits: int = 384) -> List[str]:
    from repro.crossbar import periphery
    from repro.karatsuba import floorplan

    _write(out_dir / "floorplan.txt", floorplan.comparison(n_bits))
    _write(out_dir / "periphery.txt", periphery.comparison(n_bits))
    return ["floorplan.txt", "periphery.txt"]


def write_claims(out_dir: Path) -> List[str]:
    from repro.eval import claims

    _write(out_dir / "claims.txt", claims.render())
    payload = [
        {
            "section": r.section,
            "statement": r.statement,
            "verdict": r.verdict,
            "expected": r.expected_verdict,
            "detail": r.detail,
            "ok": r.ok,
        }
        for r in claims.verify_all()
    ]
    (out_dir / "claims.json").write_text(json.dumps(payload, indent=2))
    return ["claims.txt", "claims.json"]


def write_robustness(out_dir: Path) -> List[str]:
    from repro.crossbar import variability
    from repro.eval import sensitivity

    _write(out_dir / "sensitivity.txt", sensitivity.render(384))
    _write(out_dir / "variability.txt", variability.render())
    return ["sensitivity.txt", "variability.txt"]


def write_all(out_dir: str) -> Dict[str, List[str]]:
    """Render every artefact into *out_dir*; returns the file manifest."""
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    manifest = {
        "table1": write_table1(path),
        "fig4": write_fig4(path),
        "explore": write_explore(path),
        "scaling": write_scaling(path),
        "energy": write_energy(path),
        "floorplan": write_floorplan(path),
        "claims": write_claims(path),
        "robustness": write_robustness(path),
    }
    (path / "MANIFEST.json").write_text(json.dumps(manifest, indent=2))
    return manifest
