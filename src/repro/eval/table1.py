"""Regeneration of the paper's Table I (Sec. V).

For each operand width n in {64, 128, 256, 384} and each design —
the four scaled-up baselines [6]-[9] and ours — the harness computes
throughput (multiplications per Mcc), area (cells), ATP
(cells/throughput) and max writes per cell, plus the relative factors
the paper prints in parentheses (normalised to our design).  It also
derives the two Sec. V textual claims: the row-length reduction versus
MultPIM and the write reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines import ALL_BASELINES, PAPER_TABLE1, TABLE1_SIZES
from repro.baselines import leitersdorf
from repro.eval.report import format_ratio, format_table
from repro.karatsuba import cost
from repro.sim.stats import DesignMetrics


@dataclass(frozen=True)
class Table1Entry:
    """One computed row of Table I, with factors relative to ours."""

    work: str
    n_bits: int
    throughput_per_mcc: float
    area_cells: int
    atp: float
    max_writes: Optional[int]
    throughput_factor_vs_ours: float
    atp_factor_vs_ours: float


def our_metrics(n_bits: int) -> DesignMetrics:
    """Our design point from the analytic model (Sec. IV closed forms)."""
    return cost.design_metrics(n_bits, depth=2)


def generate(sizes=TABLE1_SIZES) -> List[Table1Entry]:
    """Compute every row of Table I."""
    entries: List[Table1Entry] = []
    for n_bits in sizes:
        ours = our_metrics(n_bits)
        for baseline in ALL_BASELINES:
            m = baseline.metrics(n_bits)
            entries.append(
                Table1Entry(
                    work=baseline.name,
                    n_bits=n_bits,
                    throughput_per_mcc=m.throughput_per_mcc,
                    area_cells=m.area_cells,
                    atp=m.atp,
                    max_writes=m.max_writes_per_cell,
                    throughput_factor_vs_ours=(
                        ours.throughput_per_mcc / m.throughput_per_mcc
                    ),
                    atp_factor_vs_ours=m.atp / ours.atp,
                )
            )
        entries.append(
            Table1Entry(
                work="ours",
                n_bits=n_bits,
                throughput_per_mcc=ours.throughput_per_mcc,
                area_cells=ours.area_cells,
                atp=ours.atp,
                max_writes=ours.max_writes_per_cell,
                throughput_factor_vs_ours=1.0,
                atp_factor_vs_ours=1.0,
            )
        )
    return entries


def render(entries: Optional[List[Table1Entry]] = None) -> str:
    """Render the computed table in the paper's layout."""
    entries = entries if entries is not None else generate()
    rows = []
    for e in entries:
        rows.append(
            (
                e.work,
                e.n_bits,
                round(e.throughput_per_mcc, 1),
                e.area_cells,
                round(e.atp, 1),
                e.max_writes if e.max_writes is not None else "n.r.",
                format_ratio(e.throughput_factor_vs_ours),
                format_ratio(e.atp_factor_vs_ours),
            )
        )
    return format_table(
        headers=(
            "work", "n", "tput/Mcc", "area", "ATP", "max wr",
            "tput vs ours", "ATP vs ours",
        ),
        rows=rows,
        title="Table I - comparison of area and throughput to related works",
    )


def compare_with_paper(
    entries: Optional[List[Table1Entry]] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Relative error of every computed cell against the paper's value.

    Returns ``{work: {n: {metric: relative_error}}}`` for throughput,
    area and ATP.
    """
    entries = entries if entries is not None else generate()
    errors: Dict[str, Dict[int, Dict[str, float]]] = {}
    for e in entries:
        ref = PAPER_TABLE1[e.work][e.n_bits]
        cell = errors.setdefault(e.work, {}).setdefault(e.n_bits, {})
        cell["throughput"] = (
            abs(e.throughput_per_mcc - ref.throughput_per_mcc)
            / ref.throughput_per_mcc
        )
        cell["area"] = abs(e.area_cells - ref.area_cells) / ref.area_cells
        cell["atp"] = abs(e.atp - ref.atp) / ref.atp
    return errors


# ----------------------------------------------------------------------
# Sec. V textual claims
# ----------------------------------------------------------------------
def headline_factors(sizes=TABLE1_SIZES) -> Dict[str, float]:
    """The abstract's headline numbers: max throughput and ATP factors
    versus any baseline (916x and 281x, both against [7] at n=384)."""
    best_throughput = 0.0
    best_atp = 0.0
    for e in generate(sizes):
        if e.work == "ours":
            continue
        best_throughput = max(best_throughput, e.throughput_factor_vs_ours)
        best_atp = max(best_atp, e.atp_factor_vs_ours)
    return {"throughput": best_throughput, "atp": best_atp}


def row_length_vs_multpim(n_bits: int = 384) -> float:
    """Sec. V: our longest crossbar row versus MultPIM's single row.

    Our longest row is a multiplication-stage row of ``12*(n/4+2)``
    cells; MultPIM needs ``14n - 7`` cells in one bit line.  The paper
    reports a 4x reduction at n = 384.
    """
    ours = 12 * (n_bits // 4 + 2)
    theirs = leitersdorf.row_length(n_bits)
    return theirs / ours


def write_reduction_vs_multpim(n_bits: int = 384) -> float:
    """Sec. V: max-writes reduction versus [9] (up to 7.8x)."""
    ours = cost.max_writes_per_cell(n_bits)
    theirs = leitersdorf.max_writes_per_cell(n_bits)
    return theirs / ours
