"""Asymptotic-scaling analysis of the compared designs (Sec. II-C).

The paper frames its related-work discussion in complexity classes:
schoolbook designs have quadratic time or area, MultPIM achieves
O(n log n) time / O(n) area, and Karatsuba's algorithmic complexity is
O(n^1.58).  This module fits the measured cost models over a geometric
range of operand widths (log-log least squares) and recovers those
exponents numerically, turning the complexity table of Sec. II-C into
a testable artefact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines import hajali, lakshmi, leitersdorf, radakovits
from repro.karatsuba import cost
from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class ScalingFit:
    """Power-law fit ``metric ~ c * n^exponent``."""

    design: str
    metric: str
    exponent: float
    r_squared: float

    def classify(self) -> str:
        """Rough complexity-class label for reports.

        A pure power fit cannot separate O(n) from O(n log n) exactly;
        over the evaluated range n log n fits an exponent of ~1.1-1.3,
        which is what the O(n log n) bucket captures.
        """
        e = self.exponent
        if e < 0.25:
            return "O(1)"
        if e < 1.02:
            return "O(n)"
        if e < 1.45:
            return "O(n log n)"
        if e < 1.8:
            return "O(n^1.58)"
        return "O(n^2)"


def fit_power_law(
    sizes: Sequence[int], values: Sequence[float], design: str, metric: str
) -> ScalingFit:
    """Least-squares slope in log-log space."""
    if len(sizes) != len(values) or len(sizes) < 3:
        raise DesignError("need at least three (size, value) samples")
    if any(v <= 0 for v in values) or any(s <= 1 for s in sizes):
        raise DesignError("samples must be positive (and sizes > 1)")
    log_n = np.log(np.asarray(sizes, dtype=float))
    log_v = np.log(np.asarray(values, dtype=float))
    slope, intercept = np.polyfit(log_n, log_v, 1)
    prediction = slope * log_n + intercept
    ss_res = float(((log_v - prediction) ** 2).sum())
    ss_tot = float(((log_v - log_v.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(
        design=design, metric=metric, exponent=float(slope),
        r_squared=r_squared,
    )


#: Cost-model accessors per design: (area(n), latency(n)).
_DESIGNS: Dict[str, Tuple[Callable[[int], int], Callable[[int], int]]] = {
    "radakovits2020": (radakovits.area_cells, radakovits.latency_cc),
    "hajali2018": (hajali.area_cells, hajali.latency_cc),
    "lakshmi2022": (lakshmi.area_cells, lakshmi.latency_cc),
    "leitersdorf2022": (leitersdorf.area_cells, leitersdorf.latency_cc),
    "ours": (
        lambda n: cost.design_cost(n, 2).area_cells,
        # The asymptotic driver: the multiplication stage
        # (m(ceil(log2 m)+14)+3 with m = n/4+2).  Total latency is
        # constant-dominated at the window's low end (the postcompute
        # stage's 121*log term), which would mask the growth law.
        lambda n: cost.multiply_cost(n, 2).latency_cc,
    ),
}

#: Default geometric sweep (wide enough for stable exponents).
DEFAULT_SIZES = (64, 128, 256, 512, 1024)


def scaling_fits(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> List[ScalingFit]:
    """Area and latency exponents of every design."""
    fits: List[ScalingFit] = []
    for design, (area_fn, latency_fn) in _DESIGNS.items():
        fits.append(
            fit_power_law(
                sizes, [area_fn(n) for n in sizes], design, "area"
            )
        )
        fits.append(
            fit_power_law(
                sizes, [latency_fn(n) for n in sizes], design, "latency"
            )
        )
    return fits


def expected_classes() -> Dict[Tuple[str, str], str]:
    """The complexity classes Sec. II-C assigns to each design."""
    return {
        ("radakovits2020", "area"): "O(n^2)",
        ("radakovits2020", "latency"): "O(n log n)",
        ("hajali2018", "area"): "O(n)",
        ("hajali2018", "latency"): "O(n^2)",
        ("lakshmi2022", "area"): "O(n^2)",
        # The paper's scaled [8] numbers grow slightly superlinearly
        # (Wallace depth + widening final adder).
        ("lakshmi2022", "latency"): "O(n log n)",
        ("leitersdorf2022", "area"): "O(n)",
        ("leitersdorf2022", "latency"): "O(n log n)",
        ("ours", "area"): "O(n)",
        ("ours", "latency"): "O(n log n)",
    }


def render(sizes: Sequence[int] = DEFAULT_SIZES) -> str:
    """Text table of fitted exponents and complexity classes."""
    from repro.eval.report import format_table

    expected = expected_classes()
    rows = []
    for fit in scaling_fits(sizes):
        rows.append(
            (
                fit.design,
                fit.metric,
                round(fit.exponent, 2),
                fit.classify(),
                expected[(fit.design, fit.metric)],
                round(fit.r_squared, 4),
            )
        )
    return format_table(
        ("design", "metric", "exponent", "fitted class", "paper class", "R^2"),
        rows,
        title="Sec. II-C - complexity classes recovered from the cost models",
    )
