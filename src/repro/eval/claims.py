"""Machine-checkable ledger of every quantitative claim in the paper.

Each entry pairs a sentence-level claim from the paper with the
reproduction's value and a verdict.  ``verify_all()`` evaluates the
whole ledger; the test suite asserts every claim lands on its expected
verdict, so a regression anywhere in the stack shows up as a named
claim flipping.

Verdict semantics:

* ``exact`` — the reproduced value equals the paper's;
* ``approx`` — within the stated tolerance (printed with both values);
* ``shape`` — the qualitative statement (an ordering, a crossover, a
  choice) is reproduced;
* ``discrepancy`` — the reproduction disagrees and we believe the
  paper's figure is in error (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

VERDICTS = ("exact", "approx", "shape", "discrepancy")


@dataclass(frozen=True)
class Claim:
    """One quantitative statement and its reproduction outcome."""

    section: str
    statement: str
    expected_verdict: str
    check: Callable[[], tuple]        # -> (verdict, detail)

    def evaluate(self) -> "ClaimResult":
        verdict, detail = self.check()
        return ClaimResult(
            section=self.section,
            statement=self.statement,
            verdict=verdict,
            expected_verdict=self.expected_verdict,
            detail=detail,
        )


@dataclass(frozen=True)
class ClaimResult:
    section: str
    statement: str
    verdict: str
    expected_verdict: str
    detail: str

    @property
    def ok(self) -> bool:
        return self.verdict == self.expected_verdict


def _within(value: float, reference: float, tolerance: float) -> bool:
    return abs(value - reference) <= tolerance * reference


def build_ledger() -> List[Claim]:
    """Construct the full claims ledger (imports deferred so the module
    stays cheap to import)."""
    from repro.algorithms import operation_counts, paper_interpolation_counts
    from repro.arith import rowmul
    from repro.arith.koggestone import latency_cc as ks_latency
    from repro.baselines import hajali, lakshmi, leitersdorf, radakovits
    from repro.eval import fig4, table1
    from repro.karatsuba import cost
    from repro.karatsuba.unroll import build_plan

    claims: List[Claim] = []

    def add(section, statement, expected, check):
        claims.append(Claim(section, statement, expected, check))

    # ------------------------------------------------------------ abstract
    add(
        "Abstract",
        "up to 916x throughput improvement",
        "approx",
        lambda: (
            "approx"
            if _within(table1.headline_factors()["throughput"], 916, 0.05)
            else "discrepancy",
            f"reproduced {table1.headline_factors()['throughput']:.0f}x",
        ),
    )
    add(
        "Abstract",
        "up to 281x area-time product improvement",
        "approx",
        lambda: (
            "approx"
            if _within(table1.headline_factors()["atp"], 281, 0.05)
            else "discrepancy",
            f"reproduced {table1.headline_factors()['atp']:.0f}x",
        ),
    )

    # ------------------------------------------------------------ Sec. II-C
    add(
        "II-C",
        "[9] needs a 5,369-memristor bit line at n = 384",
        "exact",
        lambda: (
            "exact" if leitersdorf.row_length(384) == 5369 else "discrepancy",
            str(leitersdorf.row_length(384)),
        ),
    )

    # ------------------------------------------------------------ Sec. III
    add(
        "III-B",
        "interpolation needs 25, 49, 81 multiplications for k = 3, 4, 5",
        "exact",
        lambda: (
            "exact"
            if paper_interpolation_counts() == {3: 25, 4: 49, 5: 81}
            else "discrepancy",
            str(paper_interpolation_counts()),
        ),
    )
    add(
        "III-C",
        "9, 27, 81 multiplications for L = 2, 3, 4",
        "exact",
        lambda: (
            "exact"
            if [operation_counts(L)[0] for L in (2, 3, 4)] == [9, 27, 81]
            else "discrepancy",
            str([operation_counts(L)[0] for L in (2, 3, 4)]),
        ),
    )
    add(
        "III-C",
        "10, 38, 140 precompute additions for L = 2, 3, 4",
        "discrepancy",
        lambda: (
            "exact"
            if [operation_counts(L)[1] for L in (2, 3, 4)] == [10, 38, 140]
            else "discrepancy",
            f"construction yields "
            f"{[operation_counts(L)[1] for L in (2, 3, 4)]} "
            "(140 appears to be a typo for 130)",
        ),
    )
    add(
        "III-C / Fig. 4",
        "L = 2 gives the lowest ATP across crypto-relevant sizes",
        "shape",
        lambda: (
            "shape" if fig4.best_overall_depth() == 2 else "discrepancy",
            f"geomean-optimal depth = {fig4.best_overall_depth()}",
        ),
    )

    # ------------------------------------------------------------ Sec. IV
    add(
        "IV-B",
        "n-bit Kogge-Stone latency is 8 + 11*ceil(log2 n) + 9 cc",
        "exact",
        lambda: (
            "exact"
            if all(
                ks_latency(w) == 8 + 11 * (w - 1).bit_length() + 9
                for w in (17, 65, 97, 575)
            )
            else "discrepancy",
            "verified at the design's width classes (simulated == formula)",
        ),
    )
    add(
        "IV-C",
        "precompute array is 1,980 memristors at n = 256",
        "exact",
        lambda: (
            "exact"
            if cost.precompute_cost(256, 2).area_cells == 1980
            else "discrepancy",
            str(cost.precompute_cost(256, 2).area_cells),
        ),
    )
    add(
        "IV-C",
        "a3210/b3210 additions take n/4+1-bit inputs, the rest n/4",
        "exact",
        lambda: (
            "exact"
            if (
                build_plan(256, 2).max_precompute_input_width == 65
                and build_plan(256, 2).min_precompute_input_width == 64
            )
            else "discrepancy",
            "widths 64..65 at n = 256",
        ),
    )
    add(
        "IV-E",
        "postcompute needs 11 additions/subtractions",
        "exact",
        lambda: (
            "exact"
            if cost.postcompute_passes(build_plan(256, 2), 384) == 11
            else "discrepancy",
            str(cost.postcompute_passes(build_plan(256, 2), 384)),
        ),
    )
    add(
        "IV-E",
        "the LSB trick saves 25% of postcompute area",
        "exact",
        lambda: (
            "exact" if (2 * 384 - 576) / (2 * 384) == 0.25 else "discrepancy",
            "1.5n-wide vs 2n-wide adder rows",
        ),
    )

    # ------------------------------------------------------------ Table I
    def table1_areas():
        expected = {
            ("ours", 64): 4404, ("ours", 384): 25044,
            ("radakovits2020", 384): 295298, ("hajali2018", 384): 7675,
            ("leitersdorf2022", 384): 5369,
        }
        computed = {
            ("ours", 64): cost.design_cost(64, 2).area_cells,
            ("ours", 384): cost.design_cost(384, 2).area_cells,
            ("radakovits2020", 384): radakovits.area_cells(384),
            ("hajali2018", 384): hajali.area_cells(384),
            ("leitersdorf2022", 384): leitersdorf.area_cells(384),
        }
        ok = computed == expected
        return ("exact" if ok else "discrepancy", str(computed))

    add("Table I", "area columns (cells)", "exact", table1_areas)
    add(
        "Table I",
        "our max writes/cell: 81 / 92 / 134 / 198",
        "exact",
        lambda: (
            "exact"
            if [cost.max_writes_per_cell(n) for n in (64, 128, 256, 384)]
            == [81, 92, 134, 198]
            else "discrepancy",
            str([cost.max_writes_per_cell(n) for n in (64, 128, 256, 384)]),
        ),
    )
    add(
        "Table I",
        "our throughput: 927 / 833 / 706 / 479 mult/Mcc",
        "approx",
        lambda: (
            "approx"
            if all(
                _within(
                    cost.design_cost(n, 2).throughput_per_mcc, ref, 0.03
                )
                for n, ref in ((64, 927), (128, 833), (256, 706), (384, 479))
            )
            else "discrepancy",
            "within 3% at every size (paper's column implies ~25 cc of "
            "unexplained per-interval overhead)",
        ),
    )
    add(
        "Table I",
        "[8] is faster at n <= 128 but loses throughput by n = 256",
        "shape",
        lambda: (
            "shape"
            if (
                lakshmi.metrics(64).throughput_per_mcc
                > cost.design_cost(64, 2).throughput_per_mcc
                and lakshmi.metrics(256).throughput_per_mcc
                < cost.design_cost(256, 2).throughput_per_mcc
            )
            else "discrepancy",
            "crossover between n = 128 and n = 256",
        ),
    )

    # ------------------------------------------------------------ Sec. V
    add(
        "V",
        "row length reduced by ~4x vs [9]",
        "approx",
        lambda: (
            "approx"
            if 4.0 <= table1.row_length_vs_multpim(384) <= 5.0
            else "discrepancy",
            f"{table1.row_length_vs_multpim(384):.2f}x",
        ),
    )
    add(
        "V",
        "write operations reduced by up to 7.8x vs [9]",
        "approx",
        lambda: (
            "approx"
            if _within(table1.write_reduction_vs_multpim(384), 7.8, 0.02)
            else "discrepancy",
            f"{table1.write_reduction_vs_multpim(384):.2f}x",
        ),
    )
    add(
        "V",
        "[8] is 47x larger than our design at n = 384",
        "approx",
        lambda: (
            "approx"
            if _within(
                lakshmi.area_cells(384) / cost.design_cost(384, 2).area_cells,
                47,
                0.02,
            )
            else "discrepancy",
            f"{lakshmi.area_cells(384) / cost.design_cost(384, 2).area_cells:.1f}x",
        ),
    )
    add(
        "V",
        "wear 1.6x-5.2x lower than [7]",
        "approx",
        lambda: (
            "approx"
            if (
                _within(
                    hajali.max_writes_per_cell(64)
                    / cost.max_writes_per_cell(64), 1.6, 0.02,
                )
                and _within(
                    hajali.max_writes_per_cell(384)
                    / cost.max_writes_per_cell(384), 5.2, 0.02,
                )
            )
            else "discrepancy",
            "1.58x .. 5.17x",
        ),
    )
    add(
        "V",
        "[9] writes the same cells 256-1,536 times for n = 64-384",
        "exact",
        lambda: (
            "exact"
            if (
                rowmul.max_writes_per_cell(64) == 256
                and rowmul.max_writes_per_cell(384) == 1536
            )
            else "discrepancy",
            "4n writes per multiplication",
        ),
    )
    return claims


def verify_all() -> List[ClaimResult]:
    """Evaluate the whole ledger."""
    return [claim.evaluate() for claim in build_ledger()]


def render() -> str:
    """Ledger as a text table (the reproduction's closing artefact)."""
    from repro.eval.report import format_table

    results = verify_all()
    rows = [
        (
            r.section,
            r.statement[:58],
            r.verdict + ("" if r.ok else " (UNEXPECTED)"),
            r.detail[:48],
        )
        for r in results
    ]
    passed = sum(r.ok for r in results)
    table = format_table(
        ("section", "claim", "verdict", "reproduced"),
        rows,
        title="Paper claims ledger",
    )
    return table + f"\n{passed}/{len(results)} claims land on their expected verdict"
