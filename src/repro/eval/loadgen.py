"""Open-loop load generation for the serving front-end.

Closed-loop replay (``eval.workloads.replay``) answers "how fast can
the datapath chew a backlog"; this module answers the serving
question: under *open-loop* arrivals — requests arrive on their own
clock whether or not the system keeps up — what latency distribution,
goodput and deadline-miss rate does the multiplication service
deliver, and how much does sharding the banks across worker processes
buy?

Everything runs on the **virtual cycle clock**: arrivals are stamped
``arrival_cc``, the service computes ``completion_cc`` on the same
timeline, and latency percentiles/histograms are therefore exactly
reproducible for a given seed — independent of host speed, process
count, or result delivery order.  Wall-clock time is reported
separately and only informationally.

Arrival processes (all seeded, all integer-cycle schedules):

* ``poisson`` — memoryless arrivals at a constant mean gap;
* ``bursty`` — a 2-state Markov-modulated Poisson process (MMPP):
  quiet stretches punctuated by bursts an order of magnitude denser,
  the classic stress case for an autoscaler;
* ``diurnal`` — sinusoidally modulated rate (load "days") generated
  by thinning a peak-rate Poisson stream.

Operand mixes reuse the trace families of
:mod:`repro.eval.workloads` (``fhe`` 64-bit limbs, ``zkp`` 384-bit
field elements, ``mixed`` interleaved widths).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.workloads import (
    TraceItem,
    fhe_limb_trace,
    mixed_trace,
    zkp_field_trace,
)
from repro.service import (
    DeadlineImpossibleError,
    MulRequest,
    MulResult,
    MultiplicationService,
    QueueFullError,
    ServiceConfig,
)
from repro.sim.exceptions import DesignError

__all__ = [
    "ARRIVAL_PROCESSES",
    "CHAOS_SCENARIOS",
    "DEFAULT_CRYPTO_MODULI",
    "MIXES",
    "LATENCY_BUCKETS_CC",
    "ChaosReport",
    "CryptoLoadItem",
    "CryptoLoadReport",
    "LoadItem",
    "LoadReport",
    "Slo",
    "arrival_schedule",
    "build_crypto_load",
    "build_load",
    "chaos_scenario",
    "run_chaos",
    "run_crypto",
    "run_sharded",
    "run_sync",
    "render",
    "zipf_weights",
]

ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")
MIXES = ("fhe", "zkp", "mixed")

#: Fixed latency histogram buckets (cycles).  Fixed edges make the
#: histogram bit-comparable across runs and shard counts.
LATENCY_BUCKETS_CC: Tuple[int, ...] = (
    1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000,
    128_000, 256_000, 512_000, 1_024_000,
)

_TRACES = {
    "fhe": fhe_limb_trace,
    "zkp": zkp_field_trace,
    "mixed": mixed_trace,
}


@dataclass(frozen=True)
class LoadItem:
    """One open-loop arrival: when it lands and what it multiplies."""

    arrival_cc: int
    item: TraceItem
    priority: int = 0
    deadline_cc: Optional[int] = None


@dataclass(frozen=True)
class Slo:
    """Service-level objective the report is judged against."""

    p99_cc: int = 64_000
    max_miss_rate: float = 0.05


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def arrival_schedule(
    process: str,
    jobs: int,
    mean_gap_cc: int,
    seed: int,
    burst_gap_cc: Optional[int] = None,
    burst_dwell: int = 24,
    quiet_dwell: int = 96,
    diurnal_period_cc: int = 400_000,
    diurnal_amplitude: float = 0.8,
) -> List[int]:
    """Seeded arrival instants (cycles, non-decreasing, ``jobs`` long).

    ``mean_gap_cc`` is the quiet-state / long-run mean inter-arrival
    gap.  For ``bursty``, ``burst_gap_cc`` (default ``mean_gap_cc //
    8``) is the in-burst gap and the dwell parameters give the mean
    arrivals spent per state.  For ``diurnal``, the instantaneous rate
    swings by ``±diurnal_amplitude`` around the mean over each
    ``diurnal_period_cc``.
    """
    if jobs < 0:
        raise DesignError("job count must be non-negative")
    if mean_gap_cc <= 0:
        raise DesignError("mean inter-arrival gap must be positive")
    if process not in ARRIVAL_PROCESSES:
        raise DesignError(
            f"unknown arrival process {process!r} "
            f"(known: {ARRIVAL_PROCESSES})"
        )
    rng = random.Random(seed)
    schedule: List[int] = []
    now = 0
    if process == "poisson":
        for _ in range(jobs):
            now += max(1, round(rng.expovariate(1.0 / mean_gap_cc)))
            schedule.append(now)
    elif process == "bursty":
        gap_burst = burst_gap_cc if burst_gap_cc else max(1, mean_gap_cc // 8)
        in_burst = False
        remaining = 0
        for _ in range(jobs):
            if remaining <= 0:
                in_burst = not in_burst
                dwell = burst_dwell if in_burst else quiet_dwell
                remaining = max(1, round(rng.expovariate(1.0 / dwell)))
            gap = gap_burst if in_burst else mean_gap_cc
            now += max(1, round(rng.expovariate(1.0 / gap)))
            remaining -= 1
            schedule.append(now)
    else:  # diurnal — thin a peak-rate Poisson stream
        peak_rate = (1.0 + diurnal_amplitude) / mean_gap_cc
        while len(schedule) < jobs:
            now += max(1, round(rng.expovariate(peak_rate)))
            phase = 2.0 * math.pi * now / diurnal_period_cc
            rate = (1.0 + diurnal_amplitude * math.sin(phase)) / mean_gap_cc
            if rng.random() < rate / peak_rate:
                schedule.append(now)
    return schedule


def build_load(
    mix: str,
    process: str,
    jobs: int,
    mean_gap_cc: int,
    seed: int = 0x10AD,
    deadline_slack_cc: Optional[int] = None,
    high_priority_fraction: float = 0.0,
    **arrival_kwargs: object,
) -> List[LoadItem]:
    """Pair an operand mix with an arrival process into one load.

    Operand values come from the seeded trace families; arrival
    instants from :func:`arrival_schedule` (sub-seeded so mixes and
    processes vary independently).  ``deadline_slack_cc`` stamps each
    request with ``deadline_cc = slack`` (latency budget from arrival);
    ``high_priority_fraction`` promotes a seeded subset to priority 1.
    """
    if mix not in MIXES:
        raise DesignError(f"unknown mix {mix!r} (known: {MIXES})")
    trace = _TRACES[mix](jobs, seed=seed)
    arrivals = arrival_schedule(
        process, jobs, mean_gap_cc, seed=seed ^ 0x5EED, **arrival_kwargs
    )
    rng = random.Random(seed ^ 0xA11)
    load: List[LoadItem] = []
    for arrival, item in zip(arrivals, trace):
        priority = 1 if rng.random() < high_priority_fraction else 0
        load.append(
            LoadItem(
                arrival_cc=arrival,
                item=item,
                priority=priority,
                deadline_cc=deadline_slack_cc,
            )
        )
    return load


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def _percentile(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile (deterministic, integer-valued)."""
    if not sorted_values:
        return 0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one open-loop run, entirely in the cycle domain."""

    mix: str
    process: str
    offered: int
    completed: int
    shed_by_priority: Dict[int, int]
    rejected_deadline: int
    p50_cc: int
    p95_cc: int
    p99_cc: int
    mean_cc: float
    miss_rate: float
    horizon_cc: int
    goodput_per_mcc: float
    histogram: Tuple[int, ...] = field(default=())
    wall_seconds: float = 0.0

    @property
    def shed(self) -> int:
        return sum(self.shed_by_priority.values())

    def meets(self, slo: Slo) -> bool:
        return self.p99_cc <= slo.p99_cc and self.miss_rate <= slo.max_miss_rate

    def as_dict(self) -> Dict[str, object]:
        return {
            "mix": self.mix,
            "process": self.process,
            "offered": self.offered,
            "completed": self.completed,
            "shed_by_priority": {
                str(k): v for k, v in sorted(self.shed_by_priority.items())
            },
            "rejected_deadline": self.rejected_deadline,
            "p50_cc": self.p50_cc,
            "p95_cc": self.p95_cc,
            "p99_cc": self.p99_cc,
            "mean_cc": round(self.mean_cc, 2),
            "miss_rate": round(self.miss_rate, 4),
            "horizon_cc": self.horizon_cc,
            "goodput_per_mcc": round(self.goodput_per_mcc, 3),
            "histogram": list(self.histogram),
        }


def _make_report(
    mix: str,
    process: str,
    offered: int,
    results: List[MulResult],
    shed_by_priority: Dict[int, int],
    rejected_deadline: int,
    wall_seconds: float = 0.0,
) -> LoadReport:
    latencies = sorted(
        r.service_latency_cc
        for r in results
        if r.service_latency_cc is not None
    )
    misses = sum(1 for r in results if r.deadline_met is False)
    horizon = max((r.completion_cc or 0 for r in results), default=0)
    good = sum(1 for r in results if r.deadline_met is not False)
    counts = [0] * (len(LATENCY_BUCKETS_CC) + 1)
    for latency in latencies:
        for index, edge in enumerate(LATENCY_BUCKETS_CC):
            if latency <= edge:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return LoadReport(
        mix=mix,
        process=process,
        offered=offered,
        completed=len(results),
        shed_by_priority=dict(shed_by_priority),
        rejected_deadline=rejected_deadline,
        p50_cc=_percentile(latencies, 0.50),
        p95_cc=_percentile(latencies, 0.95),
        p99_cc=_percentile(latencies, 0.99),
        mean_cc=sum(latencies) / len(latencies) if latencies else 0.0,
        miss_rate=misses / len(results) if results else 0.0,
        horizon_cc=horizon,
        goodput_per_mcc=good * 1e6 / horizon if horizon else 0.0,
        histogram=tuple(counts),
        wall_seconds=wall_seconds,
    )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
_SETTLE_CC = 1_000_000  # clock advance past the last arrival at drain


def run_sync(
    load: List[LoadItem],
    config: Optional[ServiceConfig] = None,
    mix: str = "?",
    process: str = "sync",
) -> Tuple[LoadReport, MultiplicationService]:
    """Open-loop run through one synchronous single-process service.

    The baseline the sharded frontend is judged against: every request
    funnels through a single service instance, so batches of different
    widths serialise on its way pools.
    """
    import time

    service = MultiplicationService(config if config else ServiceConfig())
    results: List[MulResult] = []
    shed: Dict[int, int] = {}
    rejected_deadline = 0
    started = time.perf_counter()
    for index, entry in enumerate(load):
        request = MulRequest(
            request_id=index,
            a=entry.item.a,
            b=entry.item.b,
            n_bits=entry.item.n_bits,
            priority=entry.priority,
            deadline_cc=entry.deadline_cc,
            arrival_cc=entry.arrival_cc,
        )
        try:
            service.submit_request(request)
        except QueueFullError:
            shed[entry.priority] = shed.get(entry.priority, 0) + 1
        except DeadlineImpossibleError:
            rejected_deadline += 1
        results.extend(service.take_completed())
    if load:
        service.advance_to_cc(load[-1].arrival_cc + _SETTLE_CC)
    results.extend(service.drain())
    wall = time.perf_counter() - started
    report = _make_report(
        mix, process, len(load), results, shed, rejected_deadline, wall
    )
    return report, service


def run_sharded(
    load: List[LoadItem],
    frontend_config: "FrontendConfig",
    mix: str = "?",
    process: str = "sharded",
) -> Tuple[LoadReport, Dict[str, object]]:
    """Open-loop run through the async sharded frontend.

    Wraps the asyncio driver in ``asyncio.run`` for synchronous
    callers (benchmarks, CLI).  Returns the report plus the frontend's
    merged snapshot (autoscaler counters, per-shard state).
    """
    import asyncio

    return asyncio.run(_run_sharded(load, frontend_config, mix, process))


async def _run_sharded(
    load: List[LoadItem],
    frontend_config: "FrontendConfig",
    mix: str,
    process: str,
) -> Tuple[LoadReport, Dict[str, object]]:
    import asyncio
    import time

    from repro.frontend import AsyncShardedFrontend

    shed: Dict[int, int] = {}
    rejected_deadline = 0
    results: List[MulResult] = []
    started = time.perf_counter()
    async with AsyncShardedFrontend(frontend_config) as fe:
        futures = []
        for entry in load:
            future = await fe.submit(
                entry.item.a,
                entry.item.b,
                entry.item.n_bits,
                priority=entry.priority,
                deadline_cc=entry.deadline_cc,
                arrival_cc=entry.arrival_cc,
            )
            futures.append((entry, future))
        if load:
            fe.advance_to_cc(load[-1].arrival_cc + _SETTLE_CC)
        await fe.drain()
        for entry, future in futures:
            try:
                results.append(await future)
            except QueueFullError:
                shed[entry.priority] = shed.get(entry.priority, 0) + 1
            except DeadlineImpossibleError:
                rejected_deadline += 1
        snapshot = await fe.snapshot()
        outstanding = fe.outstanding
    wall = time.perf_counter() - started
    if outstanding:  # pragma: no cover - future-loss guard
        raise RuntimeError(f"{outstanding} futures left unresolved")
    report = _make_report(
        mix, process, len(load), results, shed, rejected_deadline, wall
    )
    return report, snapshot


# ----------------------------------------------------------------------
# Chaos campaign driver
# ----------------------------------------------------------------------
#: Canonical chaos scenarios (see :func:`chaos_scenario`).  ``none`` is
#: the fault-free control; ``sigkill`` is an *external* hard kill of
#: shard 0 mid-batch (no injection schedule — the driver calls
#: :meth:`~repro.frontend.AsyncShardedFrontend.kill_shard`).
CHAOS_SCENARIOS = (
    "none", "kill", "hang", "drop", "duplicate", "storm", "sigkill",
)


@dataclass(frozen=True)
class ChaosReport:
    """Terminal-state accounting for one chaos scenario run.

    The supervision contract under test: every *offered* request either
    resolves to a bit-exact product, fails its future with a typed
    error, or is rejected synchronously at admission — and nothing is
    left stranded (``stranded == 0``, ``outstanding_after == 0``,
    ``journal_after == 0``).
    """

    scenario: str
    offered: int
    admitted: int
    completed: int
    failed_typed: int
    rejected_at_submit: int
    stranded: int
    mismatched: int
    outstanding_after: int
    journal_after: int
    shard_deaths: int
    shard_restarts: int
    redispatches: int
    orphan_results: int
    breaker_transitions: int
    breakers: Tuple[str, ...]
    wall_seconds: float = 0.0

    @property
    def terminal(self) -> int:
        """Requests that reached a terminal state."""
        return self.completed + self.failed_typed + self.rejected_at_submit

    @property
    def clean(self) -> bool:
        """Did every request terminate, bit-exactly, with nothing stuck?"""
        return (
            self.terminal == self.offered
            and self.stranded == 0
            and self.mismatched == 0
            and self.outstanding_after == 0
            and self.journal_after == 0
            and "open" not in self.breakers
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed_typed": self.failed_typed,
            "rejected_at_submit": self.rejected_at_submit,
            "stranded": self.stranded,
            "mismatched": self.mismatched,
            "outstanding_after": self.outstanding_after,
            "journal_after": self.journal_after,
            "shard_deaths": self.shard_deaths,
            "shard_restarts": self.shard_restarts,
            "redispatches": self.redispatches,
            "orphan_results": self.orphan_results,
            "breaker_transitions": self.breaker_transitions,
            "breakers": list(self.breakers),
            "terminal": self.terminal,
            "clean": self.clean,
        }


def chaos_scenario(
    name: str,
    shards: int,
    jobs: int,
    batch_size: int,
    seed: int = 0xC4A05,
) -> Tuple[Optional["ChaosConfig"], Optional[int]]:
    """Build one canonical injection schedule.

    Returns ``(chaos_config, sigkill_after)``: the seeded
    :class:`~repro.frontend.ChaosConfig` for the frontend (``None`` for
    the control and the external-kill scenario) and, for ``sigkill``,
    the submit index before which the driver hard-kills shard 0.

    Injection points are placed where they bite, assuming round-robin
    routing: ``kill``/``hang`` land mid-way through a shard's first
    batch (journaled work exists, none of it flushed), ``drop``/
    ``duplicate`` land exactly on the first full-batch flush (the
    command whose replies actually carry results).
    """
    from repro.frontend import ChaosConfig

    if name not in CHAOS_SCENARIOS:
        raise DesignError(
            f"unknown chaos scenario {name!r} (known: {CHAOS_SCENARIOS})"
        )
    per_shard = max(1, jobs // shards)
    mid = min(per_shard - 1, max(1, batch_size // 2))
    flush = min(per_shard - 1, batch_size - 1)
    if name == "none":
        return None, None
    if name == "kill":
        return ChaosConfig(kill=((0, mid),), seed=seed), None
    if name == "hang":
        return ChaosConfig(hang=((shards - 1, mid),), seed=seed), None
    if name == "drop":
        return (
            ChaosConfig(
                drop_replies=tuple((s, flush) for s in range(shards)),
                seed=seed,
            ),
            None,
        )
    if name == "duplicate":
        return (
            ChaosConfig(
                duplicate_replies=tuple((s, flush) for s in range(shards)),
                seed=seed,
            ),
            None,
        )
    if name == "storm":
        return (
            ChaosConfig.seeded(
                seed, shards, per_shard, kills=1, drops=1, duplicates=1
            ),
            None,
        )
    return None, jobs // 2  # sigkill


def run_chaos(
    load: List[LoadItem],
    frontend_config: "FrontendConfig",
    scenario: str = "kill",
    sigkill_after: Optional[int] = None,
) -> ChaosReport:
    """Drive one load through the frontend under a chaos scenario.

    The caller builds ``frontend_config`` with the scenario's
    :class:`~repro.frontend.ChaosConfig` already set (see
    :func:`chaos_scenario`); ``sigkill_after`` additionally hard-kills
    shard 0 right before that submit index.  Unlike
    :func:`run_sharded`, admission failures are expected here —
    ``ShardFailedError`` at submit is counted, not raised — and the
    report grades terminal-state coverage rather than latency.
    """
    import asyncio

    return asyncio.run(
        _run_chaos(load, frontend_config, scenario, sigkill_after)
    )


async def _run_chaos(
    load: List[LoadItem],
    frontend_config: "FrontendConfig",
    scenario: str,
    sigkill_after: Optional[int],
) -> ChaosReport:
    import asyncio
    import time

    from repro.frontend import AsyncShardedFrontend, ShardFailedError
    from repro.service import ServiceError

    rejected = 0
    completed = 0
    failed_typed = 0
    mismatched = 0
    futures: List[Tuple[LoadItem, "asyncio.Future"]] = []
    started = time.perf_counter()
    async with AsyncShardedFrontend(frontend_config) as fe:
        for index, entry in enumerate(load):
            if sigkill_after is not None and index == sigkill_after:
                fe.kill_shard(0, reason=f"{scenario} drill at submit {index}")
            try:
                future = await fe.submit(
                    entry.item.a,
                    entry.item.b,
                    entry.item.n_bits,
                    priority=entry.priority,
                    deadline_cc=entry.deadline_cc,
                    arrival_cc=entry.arrival_cc,
                )
            except ShardFailedError:
                rejected += 1
                continue
            futures.append((entry, future))
        if load:
            fe.advance_to_cc(load[-1].arrival_cc + _SETTLE_CC)
        await fe.drain()
        stranded = sum(1 for _, f in futures if not f.done())
        for _, future in futures:
            if not future.done():  # pragma: no cover - contract violation
                future.cancel()
        for entry, future in futures:
            try:
                result = await future
            except asyncio.CancelledError:  # pragma: no cover
                continue
            except ServiceError:
                failed_typed += 1
                continue
            completed += 1
            if result.product != entry.item.a * entry.item.b:
                mismatched += 1  # pragma: no cover - service is bit-exact
        snapshot = await fe.snapshot()
        outstanding = fe.outstanding
        journal_after = fe.journal_size
        breakers = tuple(fe.breaker_states())
    counters = snapshot["counters"]
    return ChaosReport(
        scenario=scenario,
        offered=len(load),
        admitted=len(futures),
        completed=completed,
        failed_typed=failed_typed,
        rejected_at_submit=rejected,
        stranded=stranded,
        mismatched=mismatched,
        outstanding_after=outstanding,
        journal_after=journal_after,
        shard_deaths=counters.get("frontend_shard_deaths", 0),
        shard_restarts=counters.get("frontend_shard_restarts", 0),
        redispatches=counters.get("frontend_redispatches", 0),
        orphan_results=counters.get("frontend_orphan_results", 0),
        breaker_transitions=counters.get("frontend_breaker_transitions", 0),
        breakers=breakers,
        wall_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Crypto traffic mode
# ----------------------------------------------------------------------
#: Default modulus pool: one small sparse prime (the tiny test-curve
#: field), one 16-bit sparse prime, one generic odd (Montgomery) and
#: one even (Barrett) modulus — all widths the CI can simulate fast,
#: covering every reduction strategy.
DEFAULT_CRYPTO_MODULI: Tuple[int, ...] = (97, 65521, 65195, 64854)

#: Default kind ratios of the crypto mix.
DEFAULT_KIND_MIX: Tuple[Tuple[str, float], ...] = (
    ("modmul", 0.7),
    ("modexp", 0.2),
    ("msm", 0.1),
)


def zipf_weights(count: int, s: float = 1.1) -> List[float]:
    """Zipf popularity weights ``1 / rank^s`` for *count* items.

    Crypto traffic is modulus-skewed: a handful of standardised field
    primes serve almost all requests.  Rank 0 is the most popular.
    """
    if count < 1:
        raise DesignError("need at least one item to weight")
    return [1.0 / (rank + 1) ** s for rank in range(count)]


@dataclass(frozen=True)
class CryptoLoadItem:
    """One open-loop crypto arrival: kind-tagged workload parameters."""

    arrival_cc: int
    kind: str
    modulus: int = 0
    x: int = 0
    y: int = 0
    exponent: int = 0
    scalars: Tuple[int, ...] = ()
    points: Tuple[object, ...] = ()
    priority: int = 0
    deadline_cc: Optional[int] = None


def build_crypto_load(
    jobs: int,
    mean_gap_cc: int,
    process: str = "poisson",
    seed: int = 0xC49,
    moduli: Sequence[int] = DEFAULT_CRYPTO_MODULI,
    zipf_s: float = 1.1,
    kind_mix: Sequence[Tuple[str, float]] = DEFAULT_KIND_MIX,
    exponent_bits: int = 5,
    msm_points: int = 3,
    msm_scalar_bits: int = 3,
    deadline_slack_cc: Optional[int] = None,
    curve: Optional[object] = None,
) -> List[CryptoLoadItem]:
    """Seeded open-loop crypto traffic with Zipf modulus popularity.

    ``modmul``/``modexp`` items draw their modulus from *moduli* with
    Zipf(*zipf_s*) weights (listed order = popularity rank), then draw
    residues uniformly.  ``msm`` items are tiny Pippenger instances on
    *curve* (the exhaustively-testable 97-point curve by default) with
    ``msm_points`` terms and ``msm_scalar_bits``-bit scalars.
    """
    from repro.crypto.ec import TINY_CURVE, CimEllipticCurve

    if curve is None:
        curve = TINY_CURVE
    kinds = [kind for kind, _ in kind_mix]
    kind_weights = [weight for _, weight in kind_mix]
    modulus_weights = zipf_weights(len(moduli), zipf_s)
    arrivals = arrival_schedule(
        process, jobs, mean_gap_cc, seed=seed ^ 0x5EED
    )
    rng = random.Random(seed)
    # Host-speed point table: the generator's small multiples.
    host_curve = CimEllipticCurve(curve)
    point_table = [host_curve.generator()]
    for _ in range(max(msm_points, 8) - 1):
        point_table.append(
            host_curve.add(point_table[-1], host_curve.generator())
        )
    load: List[CryptoLoadItem] = []
    for arrival in arrivals:
        kind = rng.choices(kinds, weights=kind_weights)[0]
        if kind == "msm":
            load.append(
                CryptoLoadItem(
                    arrival_cc=arrival,
                    kind=kind,
                    modulus=curve.p,
                    scalars=tuple(
                        rng.randrange(1, 1 << msm_scalar_bits)
                        for _ in range(msm_points)
                    ),
                    points=tuple(rng.sample(point_table, msm_points)),
                    deadline_cc=deadline_slack_cc,
                )
            )
            continue
        modulus = rng.choices(moduli, weights=modulus_weights)[0]
        load.append(
            CryptoLoadItem(
                arrival_cc=arrival,
                kind=kind,
                modulus=modulus,
                x=rng.randrange(modulus),
                y=rng.randrange(modulus),
                exponent=rng.randrange(1, 1 << exponent_bits),
                deadline_cc=deadline_slack_cc,
            )
        )
    return load


@dataclass(frozen=True)
class CryptoLoadReport:
    """Outcome of one open-loop crypto run, in the cycle domain."""

    offered: int
    completed: int
    by_kind: Dict[str, int]
    rejected_deadline: int
    p50_cc: int
    p95_cc: int
    p99_cc: int
    mean_cc: float
    miss_rate: float
    horizon_cc: int
    context_hit_rate: float
    multiplier_passes: int
    waves: int
    residue_checks: int
    wall_seconds: float = 0.0

    def meets(self, slo: Slo) -> bool:
        return (
            self.p99_cc <= slo.p99_cc and self.miss_rate <= slo.max_miss_rate
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "by_kind": dict(sorted(self.by_kind.items())),
            "rejected_deadline": self.rejected_deadline,
            "p50_cc": self.p50_cc,
            "p95_cc": self.p95_cc,
            "p99_cc": self.p99_cc,
            "mean_cc": round(self.mean_cc, 2),
            "miss_rate": round(self.miss_rate, 4),
            "horizon_cc": self.horizon_cc,
            "context_hit_rate": round(self.context_hit_rate, 4),
            "multiplier_passes": self.multiplier_passes,
            "waves": self.waves,
            "residue_checks": self.residue_checks,
        }


def run_crypto(
    load: List[CryptoLoadItem],
    config: Optional[ServiceConfig] = None,
    cohort_size: int = 8,
    curve: Optional[object] = None,
    msm_window_bits: int = 2,
) -> Tuple[CryptoLoadReport, "CryptoWorkloadEngine"]:
    """Open-loop crypto run through one workload engine.

    Consecutive ``modmul``/``modexp`` arrivals group into cohorts of up
    to *cohort_size* served in shared waves (same-width plans pack into
    the same SIMD batches); ``msm`` arrivals flush the pending cohort
    and run through the orchestrator.  Latency percentiles, deadline
    misses and the context-cache hit rate all live on the virtual cycle
    clock, so the report is seed-deterministic.
    """
    import time

    from repro.crypto.ec import TINY_CURVE
    from repro.workloads import (
        CryptoWorkloadEngine,
        ModExpRequest,
        ModMulRequest,
        MsmRequest,
    )

    if curve is None:
        curve = TINY_CURVE
    engine = CryptoWorkloadEngine(config=config)
    results: List[object] = []
    rejected_deadline = 0
    by_kind: Dict[str, int] = {}
    started = time.perf_counter()

    pending: List[object] = []

    def flush_cohort() -> None:
        nonlocal rejected_deadline
        if not pending:
            return
        try:
            results.extend(engine.serve_cohort(list(pending)))
        except DeadlineImpossibleError:
            # Re-serve one by one so a single infeasible deadline does
            # not reject its whole cohort.
            for request in pending:
                try:
                    results.extend(engine.serve_cohort([request]))
                except DeadlineImpossibleError:
                    rejected_deadline += 1
        pending.clear()

    for index, entry in enumerate(load):
        by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        if entry.kind == "msm":
            flush_cohort()
            request = MsmRequest(
                request_id=index,
                scalars=entry.scalars,
                points=entry.points,
                curve=curve,
                window_bits=msm_window_bits,
                priority=entry.priority,
                deadline_cc=entry.deadline_cc,
                arrival_cc=entry.arrival_cc,
            )
            try:
                results.append(engine.serve_msm(request))
            except DeadlineImpossibleError:
                rejected_deadline += 1
            continue
        if entry.kind == "modexp":
            pending.append(
                ModExpRequest(
                    request_id=index,
                    base=entry.x,
                    exponent=entry.exponent,
                    modulus=entry.modulus,
                    priority=entry.priority,
                    deadline_cc=entry.deadline_cc,
                    arrival_cc=entry.arrival_cc,
                )
            )
        else:
            pending.append(
                ModMulRequest(
                    request_id=index,
                    x=entry.x,
                    y=entry.y,
                    modulus=entry.modulus,
                    priority=entry.priority,
                    deadline_cc=entry.deadline_cc,
                    arrival_cc=entry.arrival_cc,
                )
            )
        if len(pending) >= cohort_size:
            flush_cohort()
    flush_cohort()
    wall = time.perf_counter() - started

    latencies = sorted(
        r.service_latency_cc
        for r in results
        if r.service_latency_cc is not None
    )
    misses = sum(1 for r in results if r.deadline_met is False)
    horizon = max((r.completion_cc or 0 for r in results), default=0)
    report = CryptoLoadReport(
        offered=len(load),
        completed=len(results),
        by_kind=by_kind,
        rejected_deadline=rejected_deadline,
        p50_cc=_percentile(latencies, 0.50),
        p95_cc=_percentile(latencies, 0.95),
        p99_cc=_percentile(latencies, 0.99),
        mean_cc=sum(latencies) / len(latencies) if latencies else 0.0,
        miss_rate=misses / len(results) if results else 0.0,
        horizon_cc=horizon,
        context_hit_rate=engine.contexts.stats.hit_rate,
        multiplier_passes=sum(r.multiplier_passes for r in results),
        waves=sum(r.waves for r in results),
        residue_checks=sum(r.residue_checks for r in results),
        wall_seconds=wall,
    )
    return report, engine


# ----------------------------------------------------------------------
def render(jobs: int = 96, mean_gap_cc: int = 900, seed: int = 0x10AD) -> str:
    """Latency/goodput table across mixes and arrival processes."""
    from repro.eval.report import format_table

    rows = []
    for mix in MIXES:
        for process in ARRIVAL_PROCESSES:
            load = build_load(mix, process, jobs, mean_gap_cc, seed=seed)
            report, _ = run_sync(load, mix=mix, process=process)
            rows.append(
                (
                    f"{mix}/{process}",
                    report.offered,
                    report.completed,
                    report.p50_cc,
                    report.p99_cc,
                    f"{report.miss_rate:.1%}",
                    round(report.goodput_per_mcc, 1),
                )
            )
    return format_table(
        ("load", "offered", "done", "p50 cc", "p99 cc", "miss", "good/Mcc"),
        rows,
        title="Open-loop load through the synchronous service",
    )
