"""Synthetic workload traces for accelerator-level studies.

The paper motivates CIM with data-intensive cryptographic workloads;
this module generates representative multiplication *traces* —
sequences of operand pairs with realistic value distributions — and
replays them through the reproduction's timing models:

* **FHE trace** — streams of 64-bit RNS limb products (uniform
  residues, occasional small twiddle constants);
* **ZKP trace** — 384-bit field products as an MSM inner loop would
  issue them (uniform field elements, bursts per bucket);
* **mixed trace** — interleaved widths, exercising the heterogeneous
  event simulation where the closed-form pipeline model does not apply.

Replay reports makespan, utilisation, and achieved throughput over a
:class:`~repro.karatsuba.bank.MultiplierBank` or the event simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.karatsuba import cost
from repro.karatsuba.eventsim import simulate
from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class TraceItem:
    """One multiplication job: operand width plus the operands."""

    n_bits: int
    a: int
    b: int


@dataclass(frozen=True)
class ReplayResult:
    """Timing outcome of replaying a trace."""

    jobs: int
    makespan_cc: int
    throughput_per_mcc: float
    stage_utilisation: Tuple[float, float, float]


def fhe_limb_trace(
    jobs: int, seed: int = 0xF8E, small_constant_fraction: float = 0.25
) -> List[TraceItem]:
    """64-bit limb products; a fraction multiplies by small twiddles."""
    if jobs < 0:
        raise DesignError("job count must be non-negative")
    rng = random.Random(seed)
    trace: List[TraceItem] = []
    for _ in range(jobs):
        a = rng.getrandbits(64)
        if rng.random() < small_constant_fraction:
            b = rng.getrandbits(16)          # twiddle-like constant
        else:
            b = rng.getrandbits(64)
        trace.append(TraceItem(n_bits=64, a=a, b=b))
    return trace


def zkp_field_trace(jobs: int, seed: int = 0x2E9) -> List[TraceItem]:
    """384-bit field products (uniform, as Pippenger buckets issue)."""
    if jobs < 0:
        raise DesignError("job count must be non-negative")
    rng = random.Random(seed)
    return [
        TraceItem(n_bits=384, a=rng.getrandbits(381), b=rng.getrandbits(381))
        for _ in range(jobs)
    ]


def mixed_trace(jobs: int, seed: int = 0x313) -> List[TraceItem]:
    """Random interleave of FHE-width and ZKP-width jobs."""
    return width_mix_trace(jobs, (64, 128, 256, 384), seed=seed)


def width_mix_trace(
    jobs: int, widths: Tuple[int, ...], seed: int = 0x313
) -> List[TraceItem]:
    """Random interleave of uniform jobs over an explicit width set.

    The portfolio benchmarks use this to build loads that hit both
    tuned bucket widths and off-grid widths (``n % 4 != 0``) only the
    Toom-3 / schoolbook designs can serve.
    """
    if jobs < 0:
        raise DesignError("job count must be non-negative")
    if not widths:
        raise DesignError("need at least one operand width")
    rng = random.Random(seed)
    trace: List[TraceItem] = []
    for _ in range(jobs):
        width = rng.choice(tuple(widths))
        trace.append(
            TraceItem(
                n_bits=width,
                a=rng.getrandbits(width),
                b=rng.getrandbits(width),
            )
        )
    return trace


def _stage_latencies(n_bits: int) -> Tuple[int, int, int]:
    dc = cost.design_cost(n_bits, 2)
    return (
        dc.precompute.latency_cc,
        dc.multiply.latency_cc,
        dc.postcompute.latency_cc,
    )


def replay(trace: List[TraceItem]) -> ReplayResult:
    """Replay a trace through the event-driven pipeline model.

    A reconfigurable datapath processes jobs in order; each job's
    per-stage latencies follow its width (the paper's design is
    fixed-width, so a mixed trace models the widest-provisioned array
    running narrower operands at their own stage costs).
    """
    if not trace:
        return ReplayResult(
            jobs=0, makespan_cc=0, throughput_per_mcc=0.0,
            stage_utilisation=(0.0, 0.0, 0.0),
        )
    latencies = [_stage_latencies(item.n_bits) for item in trace]
    result = simulate(latencies)
    makespan = result.makespan_cc
    busy = [0, 0, 0]
    for triple in latencies:
        for stage in range(3):
            busy[stage] += triple[stage]
    utilisation = tuple(
        min(1.0, b / makespan) if makespan else 0.0 for b in busy
    )
    return ReplayResult(
        jobs=len(trace),
        makespan_cc=makespan,
        throughput_per_mcc=len(trace) * 1e6 / makespan if makespan else 0.0,
        stage_utilisation=utilisation,
    )


def render(jobs: int = 32) -> str:
    """Workload summary table for the three trace families."""
    from repro.eval.report import format_table

    rows = []
    for name, trace in (
        ("fhe-64b", fhe_limb_trace(jobs)),
        ("zkp-384b", zkp_field_trace(jobs)),
        ("mixed", mixed_trace(jobs)),
    ):
        result = replay(trace)
        rows.append(
            (
                name,
                result.jobs,
                result.makespan_cc,
                round(result.throughput_per_mcc, 1),
                " / ".join(f"{u:.0%}" for u in result.stage_utilisation),
            )
        )
    return format_table(
        ("trace", "jobs", "makespan cc", "tput/Mcc", "stage utilisation"),
        rows,
        title="Workload replay through the pipelined datapath",
    )
