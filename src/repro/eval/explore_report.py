"""Regeneration of the Sec. III quantitative claims.

Covers the numbers quoted in the algorithm-exploration text:

* Toom-Cook interpolation needs 25/49/81 constant multiplications for
  k = 3/4/5, with fractional inverse-matrix entries (Sec. III-B);
* unrolled Karatsuba needs 9/27/81 multiplications and 10/38/130
  precompute additions for L = 2/3/4 (Sec. III-C; the paper prints 140
  for L = 4 where the construction yields 130 — see EXPERIMENTS.md);
* recursive Karatsuba needs a different adder width per level while
  the unrolled form needs only ``n/2^L``..``n/2^L + L - 1``-bit adders
  (Fig. 2 vs Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algorithms.karatsuba import KaratsubaTrace, operation_counts
from repro.algorithms.toomcook import ToomCook
from repro.eval.report import format_table
from repro.karatsuba.unroll import build_plan


@dataclass(frozen=True)
class UniformityComparison:
    """Adder-width spread: recursive versus unrolled (Sec. III-C)."""

    n_bits: int
    depth: int
    recursive_widths: Tuple[int, ...]
    unrolled_min_width: int
    unrolled_max_width: int

    @property
    def recursive_distinct_sizes(self) -> int:
        return len(self.recursive_widths)

    @property
    def unrolled_distinct_sizes(self) -> int:
        return self.unrolled_max_width - self.unrolled_min_width + 1


def toomcook_table(ks: Tuple[int, ...] = (2, 3, 4, 5)) -> str:
    """Sec. III-B cost table for Toom-k."""
    rows = []
    for k in ks:
        c = ToomCook(k).cost()
        rows.append(
            (
                f"toom-{k}",
                c.pointwise_multiplications,
                c.interpolation_multiplications,
                c.fractional_constants,
                c.non_power_of_two_constants,
            )
        )
    return format_table(
        headers=("method", "pointwise mults", "interp const-mults",
                 "fractional", "non-pow2"),
        rows=rows,
        title="Sec. III-B - Toom-Cook interpolation cost",
    )


def karatsuba_counts(depths: Tuple[int, ...] = (1, 2, 3, 4)) -> Dict[int, Tuple[int, int]]:
    """``{L: (multiplications, precompute additions)}`` from both the
    closed form and the constructed plan (they must agree)."""
    counts: Dict[int, Tuple[int, int]] = {}
    for depth in depths:
        closed = operation_counts(depth)
        plan = build_plan(1024, depth)
        constructed = (len(plan.multiplications), len(plan.precompute_adds))
        if closed != constructed:
            raise AssertionError(
                f"plan construction disagrees with closed form at L={depth}: "
                f"{constructed} vs {closed}"
            )
        counts[depth] = closed
    return counts


def uniformity(n_bits: int = 256, depth: int = 2) -> UniformityComparison:
    """Compare addition-width uniformity of recursive vs unrolled."""
    trace = KaratsubaTrace(n_bits, depth)
    trace.run((1 << n_bits) - 1, (1 << n_bits) - 3)
    plan = build_plan(n_bits, depth)
    return UniformityComparison(
        n_bits=n_bits,
        depth=depth,
        recursive_widths=tuple(trace.distinct_addition_widths()),
        unrolled_min_width=plan.min_precompute_input_width,
        unrolled_max_width=plan.max_precompute_input_width,
    )


def render(n_bits: int = 256) -> str:
    """Full Sec. III report."""
    sections: List[str] = [toomcook_table()]
    counts = karatsuba_counts()
    sections.append(
        format_table(
            headers=("L", "multiplications", "precompute additions"),
            rows=[(d, m, a) for d, (m, a) in sorted(counts.items())],
            title="Sec. III-C - unrolled Karatsuba operation counts",
        )
    )
    u = uniformity(n_bits)
    sections.append(
        f"Sec. III-C uniformity at n={n_bits}, L={u.depth}: recursive needs "
        f"adder widths {list(u.recursive_widths)}; unrolled needs only "
        f"{u.unrolled_min_width}..{u.unrolled_max_width}-bit additions."
    )
    return "\n\n".join(sections)
