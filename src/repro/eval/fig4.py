"""Regeneration of the paper's Fig. 4: ATP versus unroll depth L.

The paper sweeps the Karatsuba depth L and finds L = 2 minimises the
area-time product across cryptographically relevant sizes.  This
module produces the same series from the generalised cost model and
summarises the choice the figure supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.eval.report import format_table
from repro.karatsuba import cost

#: Default sweep matching the crypto-relevant range of the figure.
DEFAULT_SIZES = (64, 128, 256, 384, 512, 768, 1024)
DEFAULT_DEPTHS = (1, 2, 3, 4)


@dataclass(frozen=True)
class Fig4Point:
    """One (depth, size) sample of the ATP surface."""

    depth: int
    n_bits: int
    atp: float
    area_cells: int
    bottleneck_cc: int


def generate(
    sizes: Tuple[int, ...] = DEFAULT_SIZES,
    depths: Tuple[int, ...] = DEFAULT_DEPTHS,
) -> List[Fig4Point]:
    """Compute the full ATP sweep (skipping infeasible (n, L) pairs)."""
    points: List[Fig4Point] = []
    for depth in depths:
        for n_bits in sizes:
            if n_bits % (1 << depth):
                continue
            dc = cost.design_cost(n_bits, depth)
            points.append(
                Fig4Point(
                    depth=depth,
                    n_bits=n_bits,
                    atp=dc.atp,
                    area_cells=dc.area_cells,
                    bottleneck_cc=dc.bottleneck_cc,
                )
            )
    return points


def series(
    points: Optional[List[Fig4Point]] = None,
) -> Dict[int, Dict[int, float]]:
    """ATP series per depth: ``{L: {n: atp}}`` (the figure's curves)."""
    points = points if points is not None else generate()
    curves: Dict[int, Dict[int, float]] = {}
    for p in points:
        curves.setdefault(p.depth, {})[p.n_bits] = p.atp
    return curves


def geomean_atp_by_depth(
    sizes: Tuple[int, ...] = (64, 128, 256, 384),
    depths: Tuple[int, ...] = DEFAULT_DEPTHS,
) -> Dict[int, float]:
    """Geometric-mean ATP over the paper's evaluation sizes per depth.

    The figure's conclusion — L = 2 is the best single choice across
    cryptographically relevant sizes — corresponds to L = 2 minimising
    this aggregate (per-size optima cross between L = 1 and L = 3 at
    the extremes of the range).
    """
    result: Dict[int, float] = {}
    for depth in depths:
        product = 1.0
        count = 0
        for n_bits in sizes:
            if n_bits % (1 << depth):
                continue
            product *= cost.design_cost(n_bits, depth).atp
            count += 1
        if count:
            result[depth] = product ** (1.0 / count)
    return result


def best_overall_depth(
    sizes: Tuple[int, ...] = (64, 128, 256, 384),
    depths: Tuple[int, ...] = DEFAULT_DEPTHS,
) -> int:
    """Depth minimising the aggregate ATP (the paper picks 2)."""
    aggregate = geomean_atp_by_depth(sizes, depths)
    return min(aggregate, key=aggregate.get)


def render(points: Optional[List[Fig4Point]] = None) -> str:
    """Render the sweep as a table (sizes as rows, depths as columns)."""
    curves = series(points)
    depths = sorted(curves)
    sizes = sorted({n for curve in curves.values() for n in curve})
    rows = []
    for n_bits in sizes:
        rows.append(
            [n_bits]
            + [
                round(curves[d][n_bits], 1) if n_bits in curves[d] else "-"
                for d in depths
            ]
        )
    return format_table(
        headers=["n"] + [f"ATP @ L={d}" for d in depths],
        rows=rows,
        title="Fig. 4 - area-time product vs Karatsuba unroll depth",
    )
