"""Evaluation harness: regenerates every table and figure of the paper."""

from repro.eval import (
    artifacts,
    asciiplot,
    claims,
    energy,
    explore_report,
    fig4,
    scaling,
    sensitivity,
    table1,
    workloads,
)
from repro.eval.report import format_ratio, format_table

__all__ = ["artifacts", "asciiplot", "claims", "sensitivity", "energy", "explore_report", "scaling", "workloads", "fig4", "format_ratio", "format_table", "table1"]
