"""Sensitivity of the paper's conclusions to cost-model assumptions.

Every cycle count in the reproduction rests on the MAGIC cost
discipline (1 cc per row-parallel NOR, 2 cc per periphery shift, 14
steps per row-multiplier iteration, ...).  Those constants come from
the paper and its references, but devices differ; this module re-prices
the whole comparison under perturbed constants and checks which
conclusions are robust:

* the ATP ordering of Table I (who beats whom),
* the Fig. 4 choice of L = 2,
* the headline factors versus the schoolbook baselines.

The parameterisation scales the three latency ingredients — the adder
pass (`alpha`), the row-multiplier iteration (`beta`), and fixed
controller overheads (`gamma`) — and rebuilds every design's latency
from its structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arith.bitops import ceil_log2
from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class CostPerturbation:
    """Multipliers on the three latency ingredients (1.0 = paper)."""

    alpha: float = 1.0      # Kogge-Stone pass cost scale
    beta: float = 1.0       # row-multiplier per-iteration cost scale
    gamma: float = 1.0      # fixed overheads (writes, resets, reorder)

    def __post_init__(self) -> None:
        for value in (self.alpha, self.beta, self.gamma):
            if value <= 0:
                raise DesignError("perturbation factors must be positive")


def _adder_pass(width: int, p: CostPerturbation) -> float:
    return p.alpha * (11 * ceil_log2(max(width, 2))) + p.gamma * 17


def _rowmul(width: int, p: CostPerturbation) -> float:
    return (
        width * (p.alpha * ceil_log2(max(width, 2)) + p.beta * 14)
        + p.gamma * 3
    )


def ours_latency(n_bits: int, p: CostPerturbation) -> Tuple[float, float, float]:
    """(precompute, multiply, postcompute) under perturbation *p*."""
    quarter = n_bits // 4
    pre = p.gamma * 9 + 10 * _adder_pass(quarter + 1, p)
    mult = _rowmul(quarter + 2, p)
    post = 11 * _adder_pass((3 * n_bits) // 2, p) + p.gamma * 18
    return pre, mult, post


def design_latencies(n_bits: int, p: CostPerturbation) -> Dict[str, float]:
    """Perturbed single-multiplication latency per design."""
    stages = ours_latency(n_bits, p)
    return {
        "ours": max(stages),                      # pipelined interval
        "radakovits2020": n_bits * (p.alpha * 10 * ceil_log2(n_bits) + p.gamma * 4),
        "hajali2018": p.alpha * 13 * n_bits * n_bits,
        # [8]'s calibrated latencies scale with the NOR pulse cost.
        "lakshmi2022": p.alpha * {64: 404, 128: 866, 256: 1905, 384: 3195}.get(
            n_bits, 404 * (n_bits / 64) ** 1.2
        ),
        "leitersdorf2022": _rowmul(n_bits, p),
    }


_AREAS = {
    "ours": lambda n: 30 * (n // 4 + 2) + 108 * (n // 4 + 2) + 30 * n,
    "radakovits2020": lambda n: 2 * n * n + n + 2,
    "hajali2018": lambda n: 20 * n - 5,
    "lakshmi2022": lambda n: 8 * n * n + 48 * (ceil_log2(n) - 2),
    "leitersdorf2022": lambda n: 14 * n - 7,
}


def atp_table(n_bits: int, p: CostPerturbation) -> Dict[str, float]:
    """Perturbed ATP per design (cells x latency / 1e6)."""
    latencies = design_latencies(n_bits, p)
    return {
        design: _AREAS[design](n_bits) * latency / 1e6
        for design, latency in latencies.items()
    }


def atp_ranking(n_bits: int, p: CostPerturbation) -> List[str]:
    """Designs sorted best-ATP-first under perturbation *p*."""
    table = atp_table(n_bits, p)
    return sorted(table, key=table.get)


@dataclass(frozen=True)
class RobustnessResult:
    """Outcome of one robustness sweep."""

    perturbations: int
    ordering_preserved: int
    l2_still_best: int
    headline_factor_range: Tuple[float, float]


def sweep(
    n_bits: int = 384,
    factors: Tuple[float, ...] = (0.5, 1.0, 2.0),
) -> RobustnessResult:
    """Grid-sweep (alpha, beta, gamma) and count surviving conclusions.

    *Ordering preserved* means the paper's ATP ranking at n = 384
    ([9] < ours < [8] < [6] < [7]) holds; *L2 still best* re-runs the
    Fig. 4 aggregate with the perturbed adder/multiplier costs.
    """
    from repro.karatsuba import cost as cost_model

    baseline_order = atp_ranking(n_bits, CostPerturbation())
    checked = 0
    order_ok = 0
    l2_ok = 0
    factor_lo, factor_hi = float("inf"), 0.0
    for alpha in factors:
        for beta in factors:
            for gamma in factors:
                p = CostPerturbation(alpha=alpha, beta=beta, gamma=gamma)
                checked += 1
                if atp_ranking(n_bits, p) == baseline_order:
                    order_ok += 1
                # Fig. 4 choice: compare L in {1,2,3} with perturbed
                # stage ingredients (structure from the cost model).
                aggregates = {}
                for depth in (1, 2, 3):
                    total = 1.0
                    for size in (64, 128, 256, 384):
                        if size % (1 << depth):
                            continue
                        chunk = size >> depth
                        adds = 2 * (3**depth - 2**depth)
                        pre = adds * _adder_pass(chunk + depth, p)
                        mult = _rowmul(chunk + depth, p)
                        passes = {1: 3, 2: 11, 3: 23}[depth]
                        post = passes * _adder_pass((3 * size) // 2, p)
                        area = cost_model.design_cost(size, depth).area_cells
                        total *= area * max(pre, mult, post)
                    aggregates[depth] = total
                if min(aggregates, key=aggregates.get) == 2:
                    l2_ok += 1
                # Headline: ours vs [7] throughput factor.
                latencies = design_latencies(n_bits, p)
                factor = latencies["hajali2018"] / latencies["ours"]
                factor_lo = min(factor_lo, factor)
                factor_hi = max(factor_hi, factor)
    return RobustnessResult(
        perturbations=checked,
        ordering_preserved=order_ok,
        l2_still_best=l2_ok,
        headline_factor_range=(factor_lo, factor_hi),
    )


def render(n_bits: int = 384) -> str:
    """Text summary of the robustness sweep."""
    result = sweep(n_bits)
    lo, hi = result.headline_factor_range
    return (
        f"Sensitivity sweep at n = {n_bits} "
        f"({result.perturbations} perturbations of alpha/beta/gamma in "
        "{0.5, 1, 2}):\n"
        f"  Table I ATP ordering preserved : "
        f"{result.ordering_preserved}/{result.perturbations}\n"
        f"  Fig. 4 choice (L = 2) preserved: "
        f"{result.l2_still_best}/{result.perturbations}\n"
        f"  headline throughput factor vs [7]: {lo:,.0f}x .. {hi:,.0f}x "
        "(paper: 916x)"
    )
