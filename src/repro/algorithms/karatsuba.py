"""Karatsuba multiplication references (Sec. III-C).

Three functionally equivalent references, each mirroring a design the
paper discusses:

* :func:`multiply_recursive` — classic recursive Karatsuba, eq. (1)-(3).
* :func:`multiply_unrolled` — the paper's depth-L unrolled variant that
  keeps the mid operands in redundant chunk form so every precompute
  addition stays narrow (Fig. 3).
* :class:`KaratsubaTrace` — an instrumented recursive run that records
  the non-uniform addition widths of the recursive form, evidencing the
  uniformity argument of Sec. III-C.1.

All references operate on arbitrary-precision Python integers and are
property-tested against native multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.arith.bitops import ceil_div, mask, split_chunks


def multiply_recursive(a: int, b: int, n_bits: int, threshold: int = 8) -> int:
    """Recursive Karatsuba product of two *n_bits*-wide operands.

    Below *threshold* bits the recursion bottoms out into schoolbook
    (native) multiplication, as every practical implementation does.
    """
    if a < 0 or b < 0:
        raise ValueError("operands must be non-negative")
    if a >> n_bits or b >> n_bits:
        raise ValueError(f"operands must fit in {n_bits} bits")
    return _recurse(a, b, n_bits, threshold)


def _recurse(a: int, b: int, n_bits: int, threshold: int) -> int:
    if n_bits <= threshold or a == 0 or b == 0:
        return a * b
    half = ceil_div(n_bits, 2)
    low_mask = mask(half)
    a_low, a_high = a & low_mask, a >> half
    b_low, b_high = b & low_mask, b >> half
    c_low = _recurse(a_low, b_low, half, threshold)
    c_high = _recurse(a_high, b_high, n_bits - half, threshold)
    c_mid = _recurse(a_low + a_high, b_low + b_high, half + 1, threshold)
    return (c_high << (2 * half)) + ((c_mid - c_high - c_low) << half) + c_low


def multiply_unrolled(a: int, b: int, n_bits: int, depth: int = 2) -> int:
    """Unrolled Karatsuba product with explicit depth-L chunking (Fig. 3).

    The operands are split into ``2**depth`` chunks *up front*; mid
    operands are kept in redundant chunk form (per-chunk sums that may
    exceed the chunk width) so that the precomputation stage consists
    solely of narrow chunk additions — the property the paper's CIM
    mapping depends on.
    """
    if depth < 1:
        raise ValueError("unroll depth must be at least 1")
    if n_bits % (1 << depth):
        raise ValueError(f"n_bits must be divisible by 2**{depth}")
    if a >> n_bits or b >> n_bits or a < 0 or b < 0:
        raise ValueError(f"operands must fit in {n_bits} bits")
    chunk_bits = n_bits >> depth
    a_chunks = split_chunks(a, chunk_bits, 1 << depth)
    b_chunks = split_chunks(b, chunk_bits, 1 << depth)
    return _combine(a_chunks, b_chunks, chunk_bits)


def _combine(a_chunks: List[int], b_chunks: List[int], chunk_bits: int) -> int:
    """Karatsuba over chunk vectors in redundant representation."""
    count = len(a_chunks)
    if count == 1:
        return a_chunks[0] * b_chunks[0]
    half = count // 2
    a_low, a_high = a_chunks[:half], a_chunks[half:]
    b_low, b_high = b_chunks[:half], b_chunks[half:]
    # Redundant mid operands: per-chunk sums, no carry normalisation.
    a_mid = [lo + hi for lo, hi in zip(a_low, a_high)]
    b_mid = [lo + hi for lo, hi in zip(b_low, b_high)]
    c_low = _combine(a_low, b_low, chunk_bits)
    c_high = _combine(a_high, b_high, chunk_bits)
    c_mid = _combine(a_mid, b_mid, chunk_bits)
    shift = half * chunk_bits
    return (c_high << (2 * shift)) + ((c_mid - c_high - c_low) << shift) + c_low


@dataclass
class KaratsubaTrace:
    """Instrumented recursive Karatsuba that records addition widths.

    ``addition_widths`` collects the operand width of every
    precomputation addition performed across the recursion; the spread
    of distinct values demonstrates the non-uniformity problem of
    Sec. III-C.1 (each level requires a different adder size).
    """

    n_bits: int
    depth: int
    addition_widths: List[int] = field(default_factory=list)
    multiplication_widths: List[int] = field(default_factory=list)

    def run(self, a: int, b: int) -> int:
        if a >> self.n_bits or b >> self.n_bits or a < 0 or b < 0:
            raise ValueError(f"operands must fit in {self.n_bits} bits")
        self.addition_widths.clear()
        self.multiplication_widths.clear()
        return self._walk(a, b, self.n_bits, self.depth)

    def _walk(self, a: int, b: int, n_bits: int, levels: int) -> int:
        if levels == 0:
            self.multiplication_widths.append(n_bits)
            return a * b
        half = ceil_div(n_bits, 2)
        low_mask = mask(half)
        a_low, a_high = a & low_mask, a >> half
        b_low, b_high = b & low_mask, b >> half
        # Two precomputation additions of `half`-bit operands per level.
        self.addition_widths.extend([half, half])
        c_low = self._walk(a_low, b_low, half, levels - 1)
        c_high = self._walk(a_high, b_high, half, levels - 1)
        c_mid = self._walk(a_low + a_high, b_low + b_high, half + 1, levels - 1)
        return (c_high << (2 * half)) + ((c_mid - c_high - c_low) << half) + c_low

    def distinct_addition_widths(self) -> List[int]:
        """Sorted distinct adder sizes the recursive form needs."""
        return sorted(set(self.addition_widths))


def complexity_exponent() -> float:
    """Karatsuba's asymptotic exponent log2(3) ~ 1.585."""
    import math

    return math.log2(3)


def operation_counts(depth: int) -> Tuple[int, int]:
    """(multiplications, precompute additions) of depth-L unrolled
    Karatsuba: ``3**L`` multiplications and ``2*(3**L - 2**L)``
    additions (9/27/81 mults and 10/38/130 adds for L = 2/3/4)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    mults = 3**depth
    adds = 2 * (3**depth - 2**depth)
    return mults, adds
