"""Algorithm-suitability exploration for CIM (paper Sec. III).

Produces the quantitative comparison behind the paper's algorithm
choice: schoolbook scales quadratically, generic Toom-k interpolation
explodes in constant multiplications (25/49/81 for k = 3/4/5) and needs
fractional constants, while Karatsuba (Toom-2) needs only three
multiplications, carry-free shifts and a handful of additions per
level — making it the best CIM fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.algorithms.karatsuba import operation_counts
from repro.algorithms.schoolbook import SchoolbookCost
from repro.algorithms.toomcook import ToomCook, interpolation_multiplications


@dataclass(frozen=True)
class AlgorithmAssessment:
    """One row of the Sec. III comparison."""

    algorithm: str
    multiplications: int
    additions: int
    interpolation_constant_mults: int
    fractional_constants: int
    uniform_operations: bool
    cim_suitable: bool
    notes: str


def assess_schoolbook(n_bits: int) -> AlgorithmAssessment:
    """Schoolbook: simple but O(n^2) AND operations (Sec. III-A)."""
    cost = SchoolbookCost(n_bits)
    return AlgorithmAssessment(
        algorithm="schoolbook",
        multiplications=cost.and_ops,
        additions=cost.additions,
        interpolation_constant_mults=0,
        fractional_constants=0,
        uniform_operations=True,
        cim_suitable=n_bits <= 64,
        notes="bit-level ANDs grow quadratically with operand width",
    )


def assess_toomcook(k: int) -> AlgorithmAssessment:
    """Generic Toom-k: large-k interpolation is CIM-hostile (Sec. III-B)."""
    instance = ToomCook(k)
    cost = instance.cost()
    return AlgorithmAssessment(
        algorithm=f"toom-{k}",
        multiplications=cost.pointwise_multiplications,
        additions=2 * (2 * k - 2),
        interpolation_constant_mults=cost.interpolation_multiplications,
        fractional_constants=cost.fractional_constants,
        uniform_operations=False,
        cim_suitable=k == 2,
        notes=(
            "interpolation needs quadratically many constant "
            "multiplications, many with fractional constants"
        ),
    )


def assess_karatsuba(depth: int) -> AlgorithmAssessment:
    """Unrolled Karatsuba: the paper's pick (Sec. III-C)."""
    mults, adds = operation_counts(depth)
    return AlgorithmAssessment(
        algorithm=f"karatsuba-L{depth}",
        multiplications=mults,
        additions=adds,
        interpolation_constant_mults=0,
        fractional_constants=0,
        uniform_operations=True,
        cim_suitable=True,
        notes=(
            "postcomputation uses only additions/subtractions and "
            "power-of-two shifts; unrolling uniformises addition widths"
        ),
    )


def exploration_report(n_bits: int = 384) -> List[AlgorithmAssessment]:
    """The full Sec. III comparison for one operand width."""
    report = [assess_schoolbook(n_bits)]
    for k in (3, 4, 5):
        report.append(assess_toomcook(k))
    for depth in (1, 2, 3, 4):
        report.append(assess_karatsuba(depth))
    return report


def paper_interpolation_counts() -> Dict[int, int]:
    """The exact figures quoted in Sec. III-B: k -> constant mults."""
    return {k: interpolation_multiplications(k) for k in (3, 4, 5)}
