"""Multiplication-algorithm exploration layer (paper Sec. III)."""

from repro.algorithms.explore import (
    AlgorithmAssessment,
    assess_karatsuba,
    assess_schoolbook,
    assess_toomcook,
    exploration_report,
    paper_interpolation_counts,
)
from repro.algorithms.karatsuba import (
    KaratsubaTrace,
    multiply_recursive,
    multiply_unrolled,
    operation_counts,
)
from repro.algorithms.schoolbook import SchoolbookCost
from repro.algorithms.schoolbook import multiply as schoolbook_multiply
from repro.algorithms.toomcook import (
    INFINITY,
    ToomCook,
    ToomCookCost,
    default_points,
    interpolation_multiplications,
)

__all__ = [
    "AlgorithmAssessment",
    "INFINITY",
    "KaratsubaTrace",
    "SchoolbookCost",
    "ToomCook",
    "ToomCookCost",
    "assess_karatsuba",
    "assess_schoolbook",
    "assess_toomcook",
    "default_points",
    "exploration_report",
    "interpolation_multiplications",
    "multiply_recursive",
    "multiply_unrolled",
    "operation_counts",
    "paper_interpolation_counts",
    "schoolbook_multiply",
]
