"""Generic Toom-Cook-k multiplication with exact interpolation (Sec. III-B).

Toom-k splits each operand into ``k`` chunks interpreted as polynomial
coefficients, evaluates both polynomials at ``2k - 1`` points,
multiplies point-wise, and interpolates the ``2k - 1``-coefficient
product polynomial by solving a Vandermonde system.  The paper's
suitability analysis hinges on two facts this module makes measurable:

* interpolation needs one constant multiplication per Vandermonde
  inverse entry — ``(2k-1)^2`` of them (25 / 49 / 81 for k = 3 / 4 / 5),
  growing quadratically with ``k``; and
* for evaluation points other than {0, ±1, ∞}, the inverse matrix
  contains non-power-of-two and *fractional* constants, which are
  expensive to realise in a NOR-based crossbar.

Interpolation is performed over exact rationals (:mod:`fractions`), so
the reference is bit-exact for arbitrary operand sizes.  Karatsuba is
recovered as the special case ``k = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arith.bitops import ceil_div, mask

#: Symbolic evaluation point at infinity (picks the leading coefficient).
INFINITY = "inf"

#: Memoised Vandermonde inverses keyed by ``(k, normalised points)``.
#: Exact Gauss-Jordan over :class:`~fractions.Fraction` is pure waste to
#: repeat — the inverse depends only on the point set, never on the
#: operands — and the portfolio tuner instantiates many ToomCook
#: references per sweep.  Entries are shared read-only matrices.
_INVERSE_CACHE: Dict[Tuple[int, Tuple[str, ...]], List[List[Fraction]]] = {}


def _points_key(k: int, points: Sequence[object]) -> Tuple[int, Tuple[str, ...]]:
    return (k, tuple(str(point) for point in points))


def inverse_cache_len() -> int:
    """Number of distinct ``(k, points)`` inverses currently memoised."""
    return len(_INVERSE_CACHE)


def default_points(k: int) -> List[object]:
    """The customary small evaluation points: 0, ±1, ±2, ... and infinity.

    ``2k - 1`` points are required; using 0 and infinity keeps two of
    the point-wise products trivial, and small integers keep evaluation
    cheap — the regime the paper's discussion assumes.
    """
    if k < 2:
        raise ValueError("Toom-Cook requires k >= 2")
    count = 2 * k - 1
    points: List[object] = [0]
    magnitude = 1
    while len(points) < count - 1:
        points.append(magnitude)
        if len(points) < count - 1:
            points.append(-magnitude)
        magnitude += 1
    points.append(INFINITY)
    return points


def _evaluate(coeffs: Sequence[int], point: object) -> int:
    if point == INFINITY:
        return coeffs[-1]
    value = 0
    for coeff in reversed(coeffs):
        value = value * point + coeff
    return value


def vandermonde(points: Sequence[object], size: int) -> List[List[Fraction]]:
    """Evaluation matrix rows ``[p**0, p**1, ...]`` (infinity row picks
    the top coefficient)."""
    matrix: List[List[Fraction]] = []
    for point in points:
        if point == INFINITY:
            row = [Fraction(0)] * size
            row[-1] = Fraction(1)
        else:
            row = [Fraction(point) ** j for j in range(size)]
        matrix.append(row)
    return matrix


def invert_matrix(matrix: List[List[Fraction]]) -> List[List[Fraction]]:
    """Exact Gauss-Jordan inverse over the rationals."""
    size = len(matrix)
    augmented = [
        list(row) + [Fraction(int(i == j)) for j in range(size)]
        for i, row in enumerate(matrix)
    ]
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if augmented[r][col] != 0), None
        )
        if pivot_row is None:
            raise ValueError("evaluation points yield a singular system")
        augmented[col], augmented[pivot_row] = augmented[pivot_row], augmented[col]
        pivot = augmented[col][col]
        augmented[col] = [value / pivot for value in augmented[col]]
        for row in range(size):
            if row != col and augmented[row][col] != 0:
                factor = augmented[row][col]
                augmented[row] = [
                    value - factor * pivot_value
                    for value, pivot_value in zip(augmented[row], augmented[col])
                ]
    return [row[size:] for row in augmented]


@dataclass(frozen=True)
class ToomCookCost:
    """CIM-relevant cost indicators of a Toom-k instance (Sec. III-B)."""

    k: int
    interpolation_multiplications: int
    fractional_constants: int
    non_power_of_two_constants: int
    pointwise_multiplications: int

    @property
    def chunk_fraction(self) -> float:
        """Chunk size relative to the operand: 1/k."""
        return 1.0 / self.k


class ToomCook:
    """Exact Toom-k multiplier over Python integers.

    >>> ToomCook(3).multiply(1234567, 7654321, 64)
    9449772114007


    Parameters
    ----------
    k:
        Splitting factor (k = 2 is Karatsuba).
    points:
        Optional custom evaluation points; ``2k - 1`` entries, integers
        or :data:`INFINITY`.
    """

    def __init__(self, k: int, points: Optional[Sequence[object]] = None):
        if k < 2:
            raise ValueError("Toom-Cook requires k >= 2")
        self.k = k
        self.points = list(points) if points is not None else default_points(k)
        if len(self.points) != 2 * k - 1:
            raise ValueError(f"Toom-{k} needs {2 * k - 1} evaluation points")
        if len(set(map(str, self.points))) != len(self.points):
            raise ValueError("evaluation points must be distinct")
        size = 2 * k - 1
        key = _points_key(k, self.points)
        inverse = _INVERSE_CACHE.get(key)
        if inverse is None:
            inverse = invert_matrix(vandermonde(self.points, size))
            _INVERSE_CACHE[key] = inverse
        self._inverse = inverse

    # ------------------------------------------------------------------
    def multiply(self, a: int, b: int, n_bits: int) -> int:
        """Toom-k product of two operands of at most *n_bits* bits."""
        if a < 0 or b < 0:
            raise ValueError("operands must be non-negative")
        if a >> n_bits or b >> n_bits:
            raise ValueError(f"operands must fit in {n_bits} bits")
        chunk_bits = ceil_div(n_bits, self.k)
        chunk_mask = mask(chunk_bits)
        a_chunks = [(a >> (i * chunk_bits)) & chunk_mask for i in range(self.k)]
        b_chunks = [(b >> (i * chunk_bits)) & chunk_mask for i in range(self.k)]

        # Evaluation at each point, then point-wise products.
        products = [
            _evaluate(a_chunks, point) * _evaluate(b_chunks, point)
            for point in self.points
        ]

        # Interpolation: exact rational solve of the Vandermonde system.
        size = 2 * self.k - 1
        coeffs: List[Fraction] = []
        for row in range(size):
            total = Fraction(0)
            for col in range(size):
                total += self._inverse[row][col] * products[col]
            coeffs.append(total)
        result = 0
        for i, coeff in enumerate(coeffs):
            if coeff.denominator != 1:
                raise ArithmeticError(
                    "interpolation produced a non-integral coefficient; "
                    "evaluation points are inconsistent"
                )
            result += int(coeff) << (i * chunk_bits)
        return result

    # ------------------------------------------------------------------
    def cost(self) -> ToomCookCost:
        """Quantify the CIM-unfriendliness of this instance's
        interpolation step (the paper's 25/49/81 argument)."""
        size = 2 * self.k - 1
        fractional = 0
        non_pow2 = 0
        for row in self._inverse:
            for value in row:
                if value == 0:
                    continue
                if value.denominator != 1:
                    fractional += 1
                magnitude = abs(value.numerator * value.denominator)
                if magnitude & (magnitude - 1):
                    non_pow2 += 1
        return ToomCookCost(
            k=self.k,
            interpolation_multiplications=size * size,
            fractional_constants=fractional,
            non_power_of_two_constants=non_pow2,
            pointwise_multiplications=size,
        )


def interpolation_multiplications(k: int) -> int:
    """The paper's interpolation cost figure: ``(2k-1)**2``
    (25, 49, 81 for k = 3, 4, 5)."""
    if k < 2:
        raise ValueError("Toom-Cook requires k >= 2")
    return (2 * k - 1) ** 2
