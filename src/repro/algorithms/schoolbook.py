"""Schoolbook (long) multiplication reference and cost model (Sec. III-A).

The schoolbook method multiplies every bit of one operand with every
bit of the other (bit-level ANDs) and sums the partial products.  It is
CIM-friendly (regular dataflow, Wallace-tree-parallelisable additions)
but scales quadratically, which is why the paper rejects it for
cryptographic operand sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith.bitops import ceil_log2


def multiply(a: int, b: int) -> int:
    """Bit-level schoolbook multiplication (shift-and-add).

    Implemented explicitly (not via ``a * b``) so the reference layer
    exercises the same partial-product structure a CIM mapping would.
    """
    if a < 0 or b < 0:
        raise ValueError("operands must be non-negative")
    product = 0
    shift = 0
    while b:
        if b & 1:
            product += a << shift
        b >>= 1
        shift += 1
    return product


@dataclass(frozen=True)
class SchoolbookCost:
    """Operation counts of an n-bit schoolbook multiplication."""

    n_bits: int

    @property
    def and_ops(self) -> int:
        """Bit-level partial products: one AND per bit pair."""
        return self.n_bits * self.n_bits

    @property
    def partial_products(self) -> int:
        return self.n_bits

    @property
    def additions(self) -> int:
        """Row-level additions to sum the partial products."""
        return self.n_bits - 1

    @property
    def wallace_depth(self) -> int:
        """Carry-save reduction depth with a Wallace tree (3->2 layers)."""
        depth = 0
        rows = self.n_bits
        while rows > 2:
            rows = rows - rows // 3
            depth += 1
        return depth

    @property
    def serial_latency_estimate_cc(self) -> int:
        """Latency if partial products are added one by one with a
        logarithmic adder: ``(n-1)`` additions of ~2n-bit operands."""
        adder = 8 + 11 * ceil_log2(max(2 * self.n_bits, 2)) + 9
        return self.additions * adder + self.and_ops // self.n_bits
