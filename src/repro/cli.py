"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``      regenerate Table I (the related-work comparison)
``fig4``        regenerate Fig. 4 (ATP vs unroll depth)
``explore``     the Sec. III algorithm-exploration report
``energy``      first-order energy comparison (extension)
``multiply``    run one multiplication through the simulated datapath
``metrics``     print the design metrics for one operand width
``scaling``     complexity-class fits of all designs (Sec. II-C)
``floorplan``   subarray dimensions and line-length practicality
``waveform``    row-activity waveform of the Kogge-Stone schedule
``artifacts``   write every table/figure to text + JSON files
``claims``      verify the machine-checkable paper-claims ledger
``variability`` MAGIC NOR sense-margin and device-spread study
``service-bench`` drive a mixed-width stream through ``repro.service``
``load-bench``  open-loop load: sync service vs sharded front-end
``fault-campaign`` seeded fault-injection sweep (kind × width)
``chaos-campaign`` seeded shard kill/hang/drop chaos drill
``trace``       export a traced bank batch as Perfetto/Chrome JSON
``bench-compare`` compare seeded benchmarks against BENCH_*.json
``optimize-report`` SIMD cycle-packer report (before/after per stage)
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.eval import table1

    print(table1.render())
    factors = table1.headline_factors()
    print()
    print(
        f"Headline: {factors['throughput']:.0f}x throughput / "
        f"{factors['atp']:.0f}x ATP vs best baseline case "
        "(paper: 916x / 281x)"
    )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.eval import fig4

    print(fig4.render())
    print()
    agg = fig4.geomean_atp_by_depth()
    for depth, value in sorted(agg.items()):
        marker = "  <- chosen" if depth == fig4.best_overall_depth() else ""
        print(f"  L={depth}: geomean ATP {value:.1f}{marker}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.eval import explore_report

    print(explore_report.render(args.bits))
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.eval import energy

    print(energy.render(args.bits))
    return 0


def _cmd_multiply(args: argparse.Namespace) -> int:
    from repro.karatsuba.design import KaratsubaCimMultiplier

    a = int(args.a, 0)
    b = int(args.b, 0)
    cim = KaratsubaCimMultiplier(args.bits)
    product = cim.multiply(a, b)
    print(f"{a} * {b} = {product}")
    if product != a * b:  # pragma: no cover - the simulator is bit-exact
        print("MISMATCH against native multiplication!", file=sys.stderr)
        return 1
    timing = cim.timing()
    print(
        f"latency {timing.latency_cc} cc, pipelined throughput "
        f"{timing.throughput_per_mcc:.0f} mult/Mcc"
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.eval import scaling

    print(scaling.render())
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.karatsuba import floorplan

    print(floorplan.comparison(args.bits))
    return 0


def _cmd_waveform(args: argparse.Namespace) -> int:
    from repro.arith.koggestone import standalone_adder
    from repro.sim import waveform

    adder, _ = standalone_adder(args.bits)
    print(waveform.render(adder.program(args.op), max_cycles=args.cycles))
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.eval import claims

    print(claims.render())
    results = claims.verify_all()
    return 0 if all(r.ok for r in results) else 1


def _cmd_variability(args: argparse.Namespace) -> int:
    from repro.crossbar import variability

    print(variability.render())
    return 0


def _cmd_artifacts(args: argparse.Namespace) -> int:
    from repro.eval.artifacts import write_all

    manifest = write_all(args.out)
    total = sum(len(files) for files in manifest.values())
    print(f"wrote {total} artefact files to {args.out}/")
    for group, files in manifest.items():
        print(f"  {group}: {', '.join(files)}")
    return 0


def _cmd_service_bench(args: argparse.Namespace) -> int:
    import random

    from repro.eval.report import format_table
    from repro.service import MultiplicationService, ServiceConfig

    widths = [int(w) for w in args.widths.split(",")]
    rng = random.Random(args.seed)
    service = MultiplicationService(
        ServiceConfig(
            batch_size=args.batch_size,
            ways_per_width=args.ways,
            max_wait_ticks=args.max_wait_ticks,
        )
    )
    if args.inject_fault:
        faulted = service.inject_fault(max(widths))
        print(f"injected sa1 fault into way {faulted}")

    expected = {}
    history = []
    for index in range(args.jobs):
        n_bits = widths[index % len(widths)]
        if history and index % 8 == 7:
            a, b, n_bits = history[rng.randrange(len(history))]
        else:
            a = rng.getrandbits(n_bits)
            b = rng.getrandbits(n_bits)
            history.append((a, b, n_bits))
        expected[service.submit(a, b, n_bits)] = a * b

    results = service.drain()
    mismatches = sum(
        1 for r in results if r.product != expected[r.request_id]
    )
    snap = service.snapshot()
    occupancy = snap["histograms"]["batch_occupancy"]
    counters = snap["counters"]
    rows = [
        ("requests", f"{counters.get('requests_submitted', 0)}"),
        ("batches flushed", f"{counters.get('batches_flushed', 0)}"),
        ("mean batch occupancy", f"{occupancy['mean']:.2f}"),
        ("operand-cache hits", f"{counters.get('operand_cache_hits', 0)}"),
        ("compile-cache hits", f"{snap['caches']['compile']['hits']}"),
        ("faults detected", f"{counters.get('faults_detected', 0)}"),
        ("ways retired", f"{counters.get('ways_retired', 0)}"),
        ("makespan", f"{snap['service']['makespan_cc']:,} cc"),
        (
            "throughput",
            f"{snap['service']['throughput_per_mcc']:.1f} mult/Mcc",
        ),
    ]
    print(
        format_table(
            ("metric", "value"),
            rows,
            title=(
                f"Service bench: {args.jobs} jobs, widths {widths}, "
                f"batch size {args.batch_size}"
            ),
        )
    )
    print()
    for way_id, busy in sorted(snap["ways"].items()):
        endurance = snap["endurance"][way_id]
        status = (
            "healthy"
            if endurance["healthy"]
            else f"retired ({endurance['retired_reason']})"
        )
        print(
            f"  {way_id}: utilisation {busy:.2f}, "
            f"max writes/cell {endurance['max_writes']}, {status}"
        )
    if mismatches:  # pragma: no cover - the service is bit-exact
        print(f"MISMATCH: {mismatches} wrong products!", file=sys.stderr)
        return 1
    print(f"all {len(results)} products bit-exact")
    return 0


def _cmd_load_bench(args: argparse.Namespace) -> int:
    """Open-loop load: sync baseline vs the async sharded front-end.

    Generates a seeded arrival schedule (Poisson / bursty MMPP /
    diurnal) over one operand mix, replays it through a synchronous
    single-process service and through the sharded front-end on the
    same per-shard config, and prints tail latencies, deadline-miss
    rates and the cycle-domain speedup.  All numbers live on the
    virtual cycle clock, so they are seed-reproducible regardless of
    host speed or ``--processes``.
    """
    from repro.eval import loadgen
    from repro.eval.report import format_table
    from repro.frontend import FrontendConfig
    from repro.service import AutoscalerConfig, ServiceConfig

    autoscale = None
    if args.autoscale:
        autoscale = AutoscalerConfig(
            min_ways=1, max_ways=max(2, args.ways * 4),
            high_depth=2 * args.batch_size, low_depth=args.batch_size,
            up_ticks=2, down_ticks=10,
        )
    service_config = ServiceConfig(
        batch_size=args.batch_size,
        ways_per_width=args.ways,
        autoscale=autoscale,
    )
    load = loadgen.build_load(
        args.mix,
        args.arrivals,
        args.jobs,
        args.gap_cc,
        seed=args.seed,
        deadline_slack_cc=args.deadline_slack_cc,
    )
    sync_report, sync_service = loadgen.run_sync(
        load, service_config, mix=args.mix, process=args.arrivals
    )
    frontend_config = FrontendConfig(
        shards=args.shards,
        inline=not args.processes,
        service=service_config,
        routing=args.routing,
    )
    sharded_report, snapshot = loadgen.run_sharded(
        load, frontend_config, mix=args.mix, process=args.arrivals
    )
    speedup = (
        sync_report.horizon_cc / sharded_report.horizon_cc
        if sharded_report.horizon_cc
        else 0.0
    )
    rows = []
    for label, report in (("sync", sync_report), ("sharded", sharded_report)):
        rows.append(
            (
                label,
                report.completed,
                report.shed,
                report.p50_cc,
                report.p95_cc,
                report.p99_cc,
                f"{report.miss_rate:.1%}",
                f"{report.horizon_cc:,}",
                f"{report.wall_seconds:.2f}s",
            )
        )
    print(
        format_table(
            (
                "path", "done", "shed", "p50 cc", "p95 cc", "p99 cc",
                "miss", "horizon cc", "wall",
            ),
            rows,
            title=(
                f"Open-loop {args.mix}/{args.arrivals}: {args.jobs} jobs, "
                f"mean gap {args.gap_cc} cc, {args.shards} "
                f"{'process' if args.processes else 'inline'} shard(s)"
            ),
        )
    )
    print()
    print(
        f"cycle-domain speedup (sync horizon / sharded horizon): "
        f"{speedup:.2f}x"
    )
    auto = snapshot.get("autoscaler", {})
    sync_counters = sync_service.snapshot()["counters"]
    ups = sync_counters.get("autoscale_up_total", 0) + auto.get("scale_ups", 0)
    downs = (
        sync_counters.get("autoscale_down_total", 0)
        + auto.get("scale_downs", 0)
    )
    if autoscale is not None:
        print(f"autoscale events (sync + sharded): {ups} up, {downs} down")
    outstanding = snapshot["service"]["outstanding_futures"]
    if outstanding:  # pragma: no cover - future-loss guard
        print(f"FAIL: {outstanding} futures never resolved", file=sys.stderr)
        return 1
    if args.slo_p99_cc is not None and sharded_report.p99_cc > args.slo_p99_cc:
        print(
            f"FAIL: sharded p99 {sharded_report.p99_cc} cc exceeds "
            f"SLO {args.slo_p99_cc} cc",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_crypto_bench(args: argparse.Namespace) -> int:
    """Open-loop crypto traffic through the workload engine.

    Generates a seeded kind-mixed arrival stream (Zipf-skewed modulus
    popularity over modmul/modexp plus tiny Pippenger MSM instances)
    and serves it through one :class:`CryptoWorkloadEngine`.  All
    latencies are in the virtual cycle domain, so the report is
    seed-reproducible.
    """
    from repro.eval import loadgen
    from repro.eval.report import format_table
    from repro.service import ServiceConfig

    moduli = tuple(int(m) for m in args.moduli.split(","))
    load = loadgen.build_crypto_load(
        args.jobs,
        args.gap_cc,
        process=args.arrivals,
        seed=args.seed,
        moduli=moduli,
        zipf_s=args.zipf_s,
        msm_points=args.msm_points,
        deadline_slack_cc=args.deadline_slack_cc,
    )
    config = ServiceConfig(batch_size=args.batch_size, ways_per_width=args.ways)
    report, engine = loadgen.run_crypto(
        load, config, cohort_size=args.cohort_size
    )
    by_kind = ", ".join(
        f"{kind}:{count}" for kind, count in sorted(report.by_kind.items())
    )
    rows = [
        (
            report.completed,
            report.rejected_deadline,
            report.p50_cc,
            report.p95_cc,
            report.p99_cc,
            f"{report.miss_rate:.1%}",
            f"{report.context_hit_rate:.1%}",
            f"{report.horizon_cc:,}",
            f"{report.wall_seconds:.2f}s",
        )
    ]
    print(
        format_table(
            (
                "done", "rej", "p50 cc", "p95 cc", "p99 cc", "miss",
                "ctx hit", "horizon cc", "wall",
            ),
            rows,
            title=(
                f"Crypto open-loop ({args.arrivals}): {args.jobs} jobs, "
                f"mean gap {args.gap_cc} cc, cohorts of {args.cohort_size}"
            ),
        )
    )
    print()
    print(f"kinds served: {by_kind}")
    print(
        f"multiplier passes: {report.multiplier_passes:,} across "
        f"{report.waves:,} waves ({report.residue_checks:,} residue checks)"
    )
    workloads = engine.snapshot()["workloads"]
    print(
        f"modulus contexts: {workloads['cached_moduli']} cached, "
        f"hit rate {workloads['context_hit_rate']:.1%}"
    )
    if args.slo_p99_cc is not None and report.p99_cc > args.slo_p99_cc:
        print(
            f"FAIL: crypto p99 {report.p99_cc} cc exceeds "
            f"SLO {args.slo_p99_cc} cc",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fault_campaign(args: argparse.Namespace) -> int:
    from repro.eval.report import format_table
    from repro.reliability import CampaignConfig, run_campaign

    config = CampaignConfig(
        widths=tuple(int(w) for w in args.widths.split(",")),
        kinds=tuple(args.kinds.split(",")),
        trials=args.trials,
        seed=args.seed,
        batch=args.batch,
        spare_rows=args.spare_rows,
        oracle_audit=args.oracle_audit,
    )
    report = run_campaign(config)

    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        rows = [
            (
                str(width),
                kind,
                str(counts["benign"]),
                str(counts["corrected"]),
                str(counts["escalated"]),
                str(counts["sdc"]),
            )
            for (width, kind), counts in sorted(report.by_cell().items())
        ]
        print(
            format_table(
                ("n", "kind", "benign", "corrected", "escalated", "sdc"),
                rows,
                title=(
                    f"Fault campaign: {config.trials} trials/cell, "
                    f"seed {config.seed}, audit "
                    f"{'on' if config.oracle_audit else 'off'}"
                ),
            )
        )
        print()
        print(f"detection rate   : {report.detection_rate:.2%}")
        print(f"residue coverage : {report.residue_coverage:.2%}")
        for over in report.overhead():
            print(
                f"residue overhead @ n={over['n_bits']}: "
                f"{over['checks']} checks, {over['latency_cc']} cc "
                f"({over['fraction']:.1%} of {over['pipeline_cc']} cc "
                f"pipeline latency), ~{over['writes']} writes"
            )
    if report.sdc:
        print(f"FAIL: {report.sdc} silent data corruption(s)", file=sys.stderr)
        return 1
    if report.detection_rate < 1.0:
        print("FAIL: undetected corrupting faults", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos_campaign(args: argparse.Namespace) -> int:
    """Seeded chaos drill against the supervised sharded front-end.

    Runs one open-loop load through every requested scenario (worker
    kill, hang, dropped replies, duplicated replies, a seeded storm
    and an external SIGKILL mid-batch) and grades each run against the
    supervision contract: every request reaches a terminal state,
    every product is bit-exact, nothing is left in the journal and no
    breaker is stuck open.  Exits non-zero when any scenario is dirty.
    """
    from repro.eval import loadgen
    from repro.eval.report import format_table
    from repro.frontend import FrontendConfig, SupervisionConfig
    from repro.service import ServiceConfig

    scenarios = (
        loadgen.CHAOS_SCENARIOS
        if args.scenarios == "all"
        else tuple(args.scenarios.split(","))
    )
    service_config = ServiceConfig(
        batch_size=args.batch_size,
        ways_per_width=args.ways,
        oracle_audit=args.oracle_audit,
    )
    supervision = SupervisionConfig(
        poll_timeout_s=0.02,
        heartbeat_interval_s=args.heartbeat_s,
        hang_timeout_s=args.hang_timeout_s,
        max_restarts=args.max_restarts,
        retry_budget=args.retry_budget,
    )
    load = loadgen.build_load(
        args.mix, args.arrivals, args.jobs, args.gap_cc, seed=args.seed
    )
    reports = []
    for name in scenarios:
        chaos, sigkill_after = loadgen.chaos_scenario(
            name, args.shards, args.jobs, args.batch_size, seed=args.seed
        )
        frontend_config = FrontendConfig(
            shards=args.shards,
            inline=not args.processes,
            service=service_config,
            supervision=supervision,
            chaos=chaos,
        )
        reports.append(
            loadgen.run_chaos(
                load,
                frontend_config,
                scenario=name,
                sigkill_after=sigkill_after,
            )
        )
    if args.json or args.out:
        import json

        payload = {
            "seed": args.seed,
            "jobs": args.jobs,
            "shards": args.shards,
            "processes": bool(args.processes),
            "scenarios": [report.as_dict() for report in reports],
        }
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        if args.json:
            print(json.dumps(payload, indent=2))
    if not args.json:
        rows = [
            (
                report.scenario,
                report.completed,
                report.failed_typed,
                report.rejected_at_submit,
                report.stranded,
                report.shard_deaths,
                report.shard_restarts,
                report.redispatches,
                report.orphan_results,
                "clean" if report.clean else "DIRTY",
            )
            for report in reports
        ]
        print(
            format_table(
                (
                    "scenario", "done", "failed", "rejected", "stranded",
                    "deaths", "restarts", "redisp", "orphans", "verdict",
                ),
                rows,
                title=(
                    f"Chaos campaign: {args.jobs} {args.mix} jobs, "
                    f"{args.shards} "
                    f"{'process' if args.processes else 'inline'} shard(s), "
                    f"seed {args.seed:#x}"
                ),
            )
        )
    dirty = [report.scenario for report in reports if not report.clean]
    if dirty:
        print(
            f"FAIL: scenario(s) violated the supervision contract: "
            f"{', '.join(dirty)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import random

    from repro import telemetry
    from repro.karatsuba.bank import MultiplierBank
    from repro.telemetry import export, model
    from repro.telemetry import profile as profiling

    rng = random.Random(args.seed)
    bank = MultiplierBank(args.bits, ways=args.ways)
    pairs = [
        (rng.getrandbits(args.bits), rng.getrandbits(args.bits))
        for _ in range(args.jobs)
    ]
    with telemetry.tracing() as tracer:
        result = bank.run_stream(pairs)
    if result.products != [a * b for a, b in pairs]:
        print("MISMATCH: traced products diverged!", file=sys.stderr)
        return 1

    # Exact steady-state schedule from the analytic timing model; the
    # live tracer spans ride along as a second span forest.
    timing = bank.timing()
    root = model.bank_spans(timing.pipeline, result.per_way_jobs)
    expected = timing.makespan_cc(len(pairs))
    if root.duration_cc != expected:
        print(
            f"FAIL: model root span {root.duration_cc} cc != "
            f"BankTiming.makespan_cc {expected} cc",
            file=sys.stderr,
        )
        return 1

    doc = export.write_trace(
        args.out,
        [root] + tracer.roots,
        metadata={
            "n_bits": args.bits,
            "ways": args.ways,
            "jobs": args.jobs,
            "seed": args.seed,
            "makespan_cc": expected,
        },
    )
    print(profiling.report(root))
    print()
    print(
        f"wrote {len(doc['traceEvents'])} trace events to {args.out} "
        f"(load in ui.perfetto.dev or chrome://tracing)"
    )
    print(
        f"root span: {root.duration_cc:,} cc == "
        f"BankTiming.makespan_cc({args.jobs}) for n={args.bits}, "
        f"{args.ways} ways"
    )
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.telemetry import baseline

    names = (
        sorted(baseline.COLLECTORS)
        if args.names == "all"
        else [n.strip() for n in args.names.split(",") if n.strip()]
    )
    unknown = [n for n in names if n not in baseline.COLLECTORS]
    if unknown:
        print(
            f"unknown workload(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(baseline.COLLECTORS))})",
            file=sys.stderr,
        )
        return 2

    if args.record:
        for name in names:
            metrics = baseline.COLLECTORS[name]()
            path = baseline.record(name, metrics, directory=args.dir)
            print(f"recorded {len(metrics)} metrics to {path}")
        return 0

    failed = False
    for name in names:
        try:
            seeds = baseline.load(name, directory=args.dir)
        except FileNotFoundError:
            print(
                f"no baseline for {name!r} in {args.dir} "
                f"(run: repro bench-compare --record --names {name})",
                file=sys.stderr,
            )
            failed = True
            continue
        tolerance = (
            args.tolerance
            if args.tolerance is not None
            else baseline.DEFAULT_TOLERANCE
        )
        current = baseline.COLLECTORS[name]()
        comparison = baseline.compare(
            name, current, seeds, tolerance=tolerance
        )
        print(comparison.render())
        if not comparison.ok:
            failed = True
    return 1 if failed else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Run the design-point tuner sweep and persist the tuning table.

    Measures every feasible (algorithm, L, optimizer, backend) design
    point at each requested width on the cycle-accurate simulator,
    selects the serving design per width bucket, and writes the
    versioned ``TUNE_portfolio.json`` that ``ServiceConfig.portfolio``
    routes against.
    """
    from repro.eval.report import format_table
    from repro.portfolio import sweep

    widths = tuple(int(w) for w in args.widths.split(",") if w.strip())
    optimize_flags = tuple(
        {"exact": False, "opt": True}[flag.strip()]
        for flag in args.optimize_flags.split(",")
        if flag.strip()
    )
    table = sweep(
        widths=widths,
        jobs=args.jobs,
        seed=args.seed,
        depths=tuple(int(d) for d in args.depths.split(",") if d.strip()),
        backends=tuple(
            b.strip() for b in args.backends.split(",") if b.strip()
        ),
        optimize_flags=optimize_flags,
    )
    table.save(args.out)
    rows = []
    for n_bits, entry in sorted(table.buckets.items()):
        winner = next(
            m for m in entry.candidates if m.design == entry.selected
        )
        rows.append(
            (
                n_bits,
                entry.selected.key(),
                winner.latency_cc,
                winner.bottleneck_cc,
                winner.selection_cc,
                len(entry.candidates),
            )
        )
    print(
        format_table(
            ("bits", "selected", "lat cc", "bneck cc", "sel cc", "cands"),
            rows,
            title=f"Tuned design points ({args.out})",
        )
    )
    return 0


def _cmd_tune_report(args: argparse.Namespace) -> int:
    """Validate and render a saved tuning table.

    Prints every bucket's candidate measurements with the selected
    design marked, re-runs the selection rule on the stored
    measurements, and exits non-zero when the table fails validation
    (schema, servability, or selection reproducibility) — the CI
    portfolio-smoke entry point.
    """
    import json

    from repro.eval.report import format_table
    from repro.portfolio import TuningTable, validate_table_payload

    with open(args.table, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    problems = validate_table_payload(payload)
    table = TuningTable.from_json(payload)
    rows = []
    for n_bits, entry in sorted(table.buckets.items()):
        for m in sorted(entry.candidates, key=lambda m: m.selection_cc):
            rows.append(
                (
                    n_bits,
                    m.design.key(),
                    m.latency_cc,
                    m.bottleneck_cc,
                    m.selection_cc,
                    m.area_cells,
                    "measured" if m.measured else "prior",
                    "<== selected" if m.design == entry.selected else "",
                )
            )
    print(
        format_table(
            (
                "bits", "design", "lat cc", "bneck cc", "sel cc",
                "cells", "source", "",
            ),
            rows,
            title=f"Tuning table {args.table} "
            f"(version {payload.get('version')})",
        )
    )
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(f"table valid: {len(table.buckets)} buckets")
    return 0


def _cmd_optimize_report(args: argparse.Namespace) -> int:
    """Before/after report of the SIMD cycle-packing optimizer.

    Builds the paper-exact and packed variants of every adder program
    the two crossbar stages run at ``--bits``, executes both on
    identical scratch arrays (same seeded operands), and prints one
    before/after row per stage: cycles, row footprint, measured array
    energy.  With ``--check`` it additionally re-verifies each packed
    program (init protocol + bit-exact final state against the
    unoptimized oracle) and exits non-zero on any violation — the CI
    optimizer-smoke entry point.
    """
    import random

    from repro.crossbar.array import CrossbarArray
    from repro.karatsuba.postcompute import PostcomputeStage
    from repro.karatsuba.precompute import PrecomputeStage
    from repro.magic.executor import MagicExecutor, int_to_bits
    from repro.magic.optimize import check_protocol
    from repro.sim.clock import Clock

    bits = args.bits
    rng = random.Random(0xC0DE)
    failures: List[str] = []

    def run_once(program, adder, cols, x, y):
        """Execute *program* on a fresh armed array; returns
        (array, energy_fj, cycles)."""
        rows = max(program.rows_touched()) + 1
        array = CrossbarArray(rows, cols)
        array.state[:] = True
        lay = adder.layout
        array.write_row(lay.x_row, int_to_bits(x, cols))
        array.write_row(lay.y_row, int_to_bits(y, cols))
        energy0 = array.energy_fj
        clock = Clock()
        MagicExecutor(array, clock=clock).execute(program)
        return array, array.energy_fj - energy0, clock.cycles

    def audit(stage_name, op, adder, base, packed, cols):
        x = rng.getrandbits(adder.layout.width)
        y = rng.getrandbits(adder.layout.width)
        if op == "sub" and y > x:
            x, y = y, x
        arr_a, e_base, cc_base = run_once(base, adder, cols, x, y)
        arr_b, e_opt, cc_opt = run_once(packed, adder, cols, x, y)
        if args.check:
            armed = frozenset(
                set(adder.layout.scratch_rows) | {adder.layout.out_row}
            )
            report = check_protocol(packed, initially_ones=armed)
            if not report.ok:
                failures.append(
                    f"{stage_name}/{op}: protocol violations "
                    f"{report.violations[:3]}"
                )
            if not (arr_a.state == arr_b.state).all():
                failures.append(
                    f"{stage_name}/{op}: packed program diverged from "
                    f"the unoptimized oracle"
                )
            if cc_opt > cc_base:
                failures.append(
                    f"{stage_name}/{op}: packed program is slower "
                    f"({cc_opt} > {cc_base} cc)"
                )
        return e_base, e_opt

    # Gather (stage, op, weight, adder, base program, packed program).
    entries = []
    pre = PrecomputeStage(bits, optimize=True)
    for step in pre.plan.precompute_adds:
        adder = pre._adder_for(step)
        entries.append(
            ("precompute", f"add[{step.out}]", 1, adder, pre.cols)
        )
    post = PostcomputeStage(bits, optimize=True)
    post_adder = post._adder()
    for op in ("add", "sub"):
        weight = post.PASS_OPS.count(op)
        entries.append(("postcompute", op, weight, post_adder, post.cols))

    stages: Dict[str, Dict[str, float]] = {}
    for stage_name, op_name, weight, adder, cols in entries:
        op = "sub" if op_name.startswith("sub") else "add"
        base = adder.program(op, optimize=False)
        packed = adder.program(op, optimize=True)
        e_base, e_opt = audit(stage_name, op, adder, base, packed, cols)
        agg = stages.setdefault(
            stage_name,
            {
                "cc_before": 0, "cc_after": 0,
                "rows_before": 0, "rows_after": 0,
                "e_before": 0.0, "e_after": 0.0,
            },
        )
        agg["cc_before"] += weight * base.cycle_count
        agg["cc_after"] += weight * packed.cycle_count
        agg["rows_before"] = max(
            agg["rows_before"], len(base.rows_touched())
        )
        agg["rows_after"] = max(
            agg["rows_after"], len(packed.rows_touched())
        )
        agg["e_before"] += weight * e_base
        agg["e_after"] += weight * e_opt

    print(f"SIMD cycle-packer report, n = {bits} bits")
    header = (
        f"  {'stage':<12} {'cycles':>15} {'rows':>9} {'energy (fJ)':>24} "
        f"{'saved':>7}"
    )
    print(header)
    for stage_name, agg in stages.items():
        saved = agg["cc_before"] - agg["cc_after"]
        pct = saved / agg["cc_before"] if agg["cc_before"] else 0.0
        print(
            f"  {stage_name:<12} "
            f"{agg['cc_before']:>6,} -> {agg['cc_after']:>6,} "
            f"{agg['rows_before']:>3} -> {agg['rows_after']:>3} "
            f"{agg['e_before']:>10,.0f} -> {agg['e_after']:>10,.0f} "
            f"{pct:>7.1%}"
        )
    pre_reports = [
        r
        for key, cache in pre._adders.items()
        for _, a in cache
        for r in a.optimizer_reports.values()
    ]
    post_reports = list(post_adder.optimizer_reports.values())
    by_pass: Dict[str, int] = {}
    for r in pre_reports + post_reports:
        for p in r.passes:
            by_pass[p.name] = by_pass.get(p.name, 0) + p.cycles_saved
    print("  cycles saved by pass:")
    for name, saved in by_pass.items():
        print(f"    {name:<18} {saved:>6,} cc")

    if args.check:
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"check: OK ({len(entries)} programs verified)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.karatsuba import cost

    metrics = cost.design_metrics(args.bits, depth=2)
    dc = cost.design_cost(args.bits, depth=2)
    print(f"n = {args.bits} bits (L = 2)")
    print(f"  area            : {metrics.area_cells:,} cells")
    for stage in dc.stages:
        print(
            f"    {stage.name:<12}: {stage.area_cells:,} cells, "
            f"{stage.latency_cc:,} cc"
        )
    print(f"  latency         : {metrics.latency_cc:,} cc")
    print(f"  throughput      : {metrics.throughput_per_mcc:.1f} mult/Mcc")
    print(f"  ATP             : {metrics.atp:.1f}")
    print(f"  max writes/cell : {metrics.max_writes_per_cell}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Karatsuba CIM multiplier reproduction (DATE 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="regenerate Table I").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("fig4", help="regenerate Fig. 4").set_defaults(
        func=_cmd_fig4
    )

    explore = sub.add_parser("explore", help="Sec. III report")
    explore.add_argument("--bits", type=int, default=256)
    explore.set_defaults(func=_cmd_explore)

    energy = sub.add_parser("energy", help="energy comparison")
    energy.add_argument("--bits", type=int, default=64)
    energy.set_defaults(func=_cmd_energy)

    multiply = sub.add_parser(
        "multiply", help="simulate one multiplication"
    )
    multiply.add_argument("a", help="first operand (int literal)")
    multiply.add_argument("b", help="second operand (int literal)")
    multiply.add_argument("--bits", type=int, default=64)
    multiply.set_defaults(func=_cmd_multiply)

    metrics = sub.add_parser("metrics", help="design metrics for a width")
    metrics.add_argument("--bits", type=int, default=256)
    metrics.set_defaults(func=_cmd_metrics)

    sub.add_parser(
        "scaling", help="complexity-class fits (Sec. II-C)"
    ).set_defaults(func=_cmd_scaling)

    fp = sub.add_parser("floorplan", help="subarray dimensions & line lengths")
    fp.add_argument("--bits", type=int, default=384)
    fp.set_defaults(func=_cmd_floorplan)

    wf = sub.add_parser("waveform", help="adder schedule waveform")
    wf.add_argument("--bits", type=int, default=8)
    wf.add_argument("--op", choices=["add", "sub"], default="add")
    wf.add_argument("--cycles", type=int, default=100)
    wf.set_defaults(func=_cmd_waveform)

    artifacts = sub.add_parser(
        "artifacts", help="write every reproduced artefact to a directory"
    )
    artifacts.add_argument("--out", default="artifacts")
    artifacts.set_defaults(func=_cmd_artifacts)

    sub.add_parser(
        "claims", help="verify the paper-claims ledger"
    ).set_defaults(func=_cmd_claims)

    sub.add_parser(
        "variability", help="MAGIC NOR sense-margin / variability study"
    ).set_defaults(func=_cmd_variability)

    svc = sub.add_parser(
        "service-bench",
        help="drive a mixed-width request stream through repro.service",
    )
    svc.add_argument("--jobs", type=int, default=64)
    svc.add_argument("--batch-size", type=int, default=8)
    svc.add_argument("--ways", type=int, default=2)
    svc.add_argument("--max-wait-ticks", type=int, default=32)
    svc.add_argument("--widths", default="16,32,64")
    svc.add_argument("--seed", type=int, default=0x5E47)
    svc.add_argument(
        "--inject-fault",
        action="store_true",
        help="pin a stuck-at-1 cell in one way and show the recovery",
    )
    svc.set_defaults(func=_cmd_service_bench)

    loadb = sub.add_parser(
        "load-bench",
        help="open-loop load: sync service vs async sharded front-end",
    )
    loadb.add_argument(
        "--mix", default="fhe", choices=("fhe", "zkp", "mixed")
    )
    loadb.add_argument(
        "--arrivals",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
    )
    loadb.add_argument("--jobs", type=int, default=64)
    loadb.add_argument(
        "--gap-cc",
        type=int,
        default=100,
        help="mean inter-arrival gap in cycles (small = overload)",
    )
    loadb.add_argument("--shards", type=int, default=4)
    loadb.add_argument(
        "--processes",
        action="store_true",
        help="host shards in worker processes instead of inline",
    )
    loadb.add_argument(
        "--routing", default="round-robin", choices=("round-robin", "width")
    )
    loadb.add_argument("--batch-size", type=int, default=8)
    loadb.add_argument("--ways", type=int, default=1)
    loadb.add_argument("--seed", type=int, default=0x10AD)
    loadb.add_argument(
        "--deadline-slack-cc",
        type=int,
        default=None,
        help="stamp every request with this latency budget",
    )
    loadb.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the way autoscaler in every service",
    )
    loadb.add_argument(
        "--slo-p99-cc",
        type=int,
        default=None,
        help="exit non-zero when the sharded p99 exceeds this",
    )
    loadb.set_defaults(func=_cmd_load_bench)

    cryptob = sub.add_parser(
        "crypto-bench",
        help="open-loop crypto traffic (modmul/modexp/MSM) through "
        "the workload engine",
    )
    cryptob.add_argument(
        "--arrivals",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
    )
    cryptob.add_argument("--jobs", type=int, default=32)
    cryptob.add_argument(
        "--gap-cc",
        type=int,
        default=20_000,
        help="mean inter-arrival gap in cycles",
    )
    cryptob.add_argument(
        "--moduli",
        default="97,65521,65195,64854",
        help="comma-separated moduli, listed in popularity order",
    )
    cryptob.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf skew of modulus popularity",
    )
    cryptob.add_argument("--msm-points", type=int, default=3)
    cryptob.add_argument("--cohort-size", type=int, default=8)
    cryptob.add_argument("--batch-size", type=int, default=8)
    cryptob.add_argument("--ways", type=int, default=1)
    cryptob.add_argument("--seed", type=int, default=0xC49)
    cryptob.add_argument(
        "--deadline-slack-cc",
        type=int,
        default=None,
        help="stamp every request with this latency budget",
    )
    cryptob.add_argument(
        "--slo-p99-cc",
        type=int,
        default=None,
        help="exit non-zero when the crypto p99 exceeds this",
    )
    cryptob.set_defaults(func=_cmd_crypto_bench)

    campaign = sub.add_parser(
        "fault-campaign",
        help="seeded fault-injection sweep over kind x width",
    )
    campaign.add_argument("--widths", default="64,256")
    campaign.add_argument(
        "--kinds", default="sa0,sa1,transient,write-failure"
    )
    campaign.add_argument("--trials", type=int, default=5)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--batch", type=int, default=4)
    campaign.add_argument("--spare-rows", type=int, default=2)
    campaign.add_argument(
        "--oracle-audit",
        action="store_true",
        help="also audit every product against the Python oracle",
    )
    campaign.add_argument("--json", action="store_true")
    campaign.set_defaults(func=_cmd_fault_campaign)

    chaos = sub.add_parser(
        "chaos-campaign",
        help="seeded shard kill/hang/drop chaos drill on the front-end",
    )
    chaos.add_argument(
        "--scenarios",
        default="all",
        help="comma-separated scenario names, or 'all' "
        "(kill,hang,drop,duplicate,storm,sigkill,none)",
    )
    chaos.add_argument(
        "--mix", default="fhe", choices=("fhe", "zkp", "mixed")
    )
    chaos.add_argument(
        "--arrivals",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
    )
    chaos.add_argument("--jobs", type=int, default=64)
    chaos.add_argument("--gap-cc", type=int, default=200)
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument(
        "--processes",
        action="store_true",
        help="host shards in worker processes (real SIGKILL/hang)",
    )
    chaos.add_argument("--batch-size", type=int, default=8)
    chaos.add_argument("--ways", type=int, default=1)
    chaos.add_argument("--seed", type=int, default=0xC4A05)
    chaos.add_argument("--max-restarts", type=int, default=2)
    chaos.add_argument("--retry-budget", type=int, default=2)
    chaos.add_argument(
        "--heartbeat-s",
        type=float,
        default=0.1,
        help="router heartbeat interval (process shards)",
    )
    chaos.add_argument(
        "--hang-timeout-s",
        type=float,
        default=1.0,
        help="unanswered-heartbeat hang threshold (process shards)",
    )
    chaos.add_argument(
        "--oracle-audit",
        action="store_true",
        help="audit every product against the Python oracle in-shard",
    )
    chaos.add_argument("--json", action="store_true")
    chaos.add_argument(
        "--out",
        default=None,
        help="also write the JSON campaign report to this path",
    )
    chaos.set_defaults(func=_cmd_chaos_campaign)

    trace = sub.add_parser(
        "trace",
        help="trace a bank batch and export Perfetto/Chrome JSON",
    )
    trace.add_argument("--bits", type=int, default=256)
    trace.add_argument("--jobs", type=int, default=8)
    trace.add_argument("--ways", type=int, default=2)
    trace.add_argument("--seed", type=int, default=0x7ACE)
    trace.add_argument("--out", default="trace.json")
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench-compare",
        help="compare seeded benchmark metrics against BENCH_*.json",
    )
    bench.add_argument(
        "--names",
        default="all",
        help="comma-separated workloads (default: all known)",
    )
    bench.add_argument(
        "--dir", default=".", help="directory holding BENCH_*.json seeds"
    )
    bench.add_argument("--tolerance", type=float, default=None)
    bench.add_argument(
        "--record",
        action="store_true",
        help="write fresh baseline seeds instead of comparing",
    )
    bench.set_defaults(func=_cmd_bench_compare)

    opt = sub.add_parser(
        "optimize-report",
        help="SIMD cycle-packer before/after report (and --check gate)",
    )
    opt.add_argument("--bits", type=int, default=64)
    opt.add_argument(
        "--check",
        action="store_true",
        help="verify packed programs (protocol + bit-exactness); "
        "non-zero exit on any violation",
    )
    opt.set_defaults(func=_cmd_optimize_report)

    tune = sub.add_parser(
        "tune",
        help="sweep design points per width and write TUNE_portfolio.json",
    )
    tune.add_argument(
        "--widths",
        default="16,32,64,90,128,270",
        help="comma-separated operand widths to measure",
    )
    tune.add_argument("--jobs", type=int, default=4)
    tune.add_argument("--seed", type=lambda s: int(s, 0), default=0x70F0)
    tune.add_argument(
        "--depths", default="1,2,3",
        help="Karatsuba unroll depths to sweep (non-2 are cost priors)",
    )
    tune.add_argument("--backends", default="word")
    tune.add_argument(
        "--optimize-flags", default="exact,opt",
        help="comma-separated subset of {exact,opt}",
    )
    tune.add_argument("--out", default="TUNE_portfolio.json")
    tune.set_defaults(func=_cmd_tune)

    tune_report = sub.add_parser(
        "tune-report",
        help="validate and render a saved tuning table",
    )
    tune_report.add_argument("--table", default="TUNE_portfolio.json")
    tune_report.set_defaults(func=_cmd_tune_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
