"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``      regenerate Table I (the related-work comparison)
``fig4``        regenerate Fig. 4 (ATP vs unroll depth)
``explore``     the Sec. III algorithm-exploration report
``energy``      first-order energy comparison (extension)
``multiply``    run one multiplication through the simulated datapath
``metrics``     print the design metrics for one operand width
``scaling``     complexity-class fits of all designs (Sec. II-C)
``floorplan``   subarray dimensions and line-length practicality
``waveform``    row-activity waveform of the Kogge-Stone schedule
``artifacts``   write every table/figure to text + JSON files
``claims``      verify the machine-checkable paper-claims ledger
``variability`` MAGIC NOR sense-margin and device-spread study
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.eval import table1

    print(table1.render())
    factors = table1.headline_factors()
    print()
    print(
        f"Headline: {factors['throughput']:.0f}x throughput / "
        f"{factors['atp']:.0f}x ATP vs best baseline case "
        "(paper: 916x / 281x)"
    )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.eval import fig4

    print(fig4.render())
    print()
    agg = fig4.geomean_atp_by_depth()
    for depth, value in sorted(agg.items()):
        marker = "  <- chosen" if depth == fig4.best_overall_depth() else ""
        print(f"  L={depth}: geomean ATP {value:.1f}{marker}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.eval import explore_report

    print(explore_report.render(args.bits))
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.eval import energy

    print(energy.render(args.bits))
    return 0


def _cmd_multiply(args: argparse.Namespace) -> int:
    from repro.karatsuba.design import KaratsubaCimMultiplier

    a = int(args.a, 0)
    b = int(args.b, 0)
    cim = KaratsubaCimMultiplier(args.bits)
    product = cim.multiply(a, b)
    print(f"{a} * {b} = {product}")
    if product != a * b:  # pragma: no cover - the simulator is bit-exact
        print("MISMATCH against native multiplication!", file=sys.stderr)
        return 1
    timing = cim.timing()
    print(
        f"latency {timing.latency_cc} cc, pipelined throughput "
        f"{timing.throughput_per_mcc:.0f} mult/Mcc"
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.eval import scaling

    print(scaling.render())
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.karatsuba import floorplan

    print(floorplan.comparison(args.bits))
    return 0


def _cmd_waveform(args: argparse.Namespace) -> int:
    from repro.arith.koggestone import standalone_adder
    from repro.sim import waveform

    adder, _ = standalone_adder(args.bits)
    print(waveform.render(adder.program(args.op), max_cycles=args.cycles))
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    from repro.eval import claims

    print(claims.render())
    results = claims.verify_all()
    return 0 if all(r.ok for r in results) else 1


def _cmd_variability(args: argparse.Namespace) -> int:
    from repro.crossbar import variability

    print(variability.render())
    return 0


def _cmd_artifacts(args: argparse.Namespace) -> int:
    from repro.eval.artifacts import write_all

    manifest = write_all(args.out)
    total = sum(len(files) for files in manifest.values())
    print(f"wrote {total} artefact files to {args.out}/")
    for group, files in manifest.items():
        print(f"  {group}: {', '.join(files)}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.karatsuba import cost

    metrics = cost.design_metrics(args.bits, depth=2)
    dc = cost.design_cost(args.bits, depth=2)
    print(f"n = {args.bits} bits (L = 2)")
    print(f"  area            : {metrics.area_cells:,} cells")
    for stage in dc.stages:
        print(
            f"    {stage.name:<12}: {stage.area_cells:,} cells, "
            f"{stage.latency_cc:,} cc"
        )
    print(f"  latency         : {metrics.latency_cc:,} cc")
    print(f"  throughput      : {metrics.throughput_per_mcc:.1f} mult/Mcc")
    print(f"  ATP             : {metrics.atp:.1f}")
    print(f"  max writes/cell : {metrics.max_writes_per_cell}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Karatsuba CIM multiplier reproduction (DATE 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="regenerate Table I").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("fig4", help="regenerate Fig. 4").set_defaults(
        func=_cmd_fig4
    )

    explore = sub.add_parser("explore", help="Sec. III report")
    explore.add_argument("--bits", type=int, default=256)
    explore.set_defaults(func=_cmd_explore)

    energy = sub.add_parser("energy", help="energy comparison")
    energy.add_argument("--bits", type=int, default=64)
    energy.set_defaults(func=_cmd_energy)

    multiply = sub.add_parser(
        "multiply", help="simulate one multiplication"
    )
    multiply.add_argument("a", help="first operand (int literal)")
    multiply.add_argument("b", help="second operand (int literal)")
    multiply.add_argument("--bits", type=int, default=64)
    multiply.set_defaults(func=_cmd_multiply)

    metrics = sub.add_parser("metrics", help="design metrics for a width")
    metrics.add_argument("--bits", type=int, default=256)
    metrics.set_defaults(func=_cmd_metrics)

    sub.add_parser(
        "scaling", help="complexity-class fits (Sec. II-C)"
    ).set_defaults(func=_cmd_scaling)

    fp = sub.add_parser("floorplan", help="subarray dimensions & line lengths")
    fp.add_argument("--bits", type=int, default=384)
    fp.set_defaults(func=_cmd_floorplan)

    wf = sub.add_parser("waveform", help="adder schedule waveform")
    wf.add_argument("--bits", type=int, default=8)
    wf.add_argument("--op", choices=["add", "sub"], default="add")
    wf.add_argument("--cycles", type=int, default=100)
    wf.set_defaults(func=_cmd_waveform)

    artifacts = sub.add_parser(
        "artifacts", help="write every reproduced artefact to a directory"
    )
    artifacts.add_argument("--out", default="artifacts")
    artifacts.set_defaults(func=_cmd_artifacts)

    sub.add_parser(
        "claims", help="verify the paper-claims ledger"
    ).set_defaults(func=_cmd_claims)

    sub.add_parser(
        "variability", help="MAGIC NOR sense-margin / variability study"
    ).set_defaults(func=_cmd_variability)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
