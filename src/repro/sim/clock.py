"""Cycle counting for the cycle-accurate CIM simulator.

The paper's evaluation is expressed entirely in clock cycles (cc); a
:class:`Clock` is the single source of truth for elapsed cycles in a
simulation.  Components advance the clock explicitly so that every
cycle spent can be attributed to an operation category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Clock:
    """A monotonically increasing cycle counter with per-category totals.

    Parameters
    ----------
    cycles:
        Total elapsed clock cycles.
    by_category:
        Cycles attributed to each operation category (e.g. ``"nor"``,
        ``"shift"``, ``"write"``).
    """

    cycles: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)

    def tick(self, n: int = 1, category: str = "other") -> int:
        """Advance the clock by *n* cycles attributed to *category*.

        Returns the new total cycle count.
        """
        if n < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {n}")
        self.cycles += n
        self.by_category[category] = self.by_category.get(category, 0) + n
        return self.cycles

    def snapshot(self) -> "Clock":
        """Return an independent copy of the current clock state."""
        return Clock(cycles=self.cycles, by_category=dict(self.by_category))

    def delta_since(self, earlier: "Clock") -> int:
        """Return cycles elapsed since an earlier :meth:`snapshot`."""
        return self.cycles - earlier.cycles

    def reset(self) -> None:
        """Reset the clock to zero and clear all category totals."""
        self.cycles = 0
        self.by_category.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cats = ", ".join(f"{k}={v}" for k, v in sorted(self.by_category.items()))
        return f"Clock(cycles={self.cycles}, {cats})"
