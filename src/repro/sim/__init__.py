"""Simulation core: cycle accounting, statistics, tracing, exceptions."""

from repro.sim.clock import Clock
from repro.sim.exceptions import (
    AddressError,
    CrossbarError,
    DesignError,
    EnduranceExhaustedError,
    FaultInjectionError,
    MagicProtocolError,
    ProgramError,
    SimulationError,
)
from repro.sim.stats import DesignMetrics, RunStats
from repro.sim.trace import Trace, TraceEntry

# NOTE: repro.sim.waveform is intentionally not imported here — it sits
# above the magic layer; import it directly as `repro.sim.waveform`.

__all__ = [
    "AddressError",
    "Clock",
    "CrossbarError",
    "DesignError",
    "DesignMetrics",
    "EnduranceExhaustedError",
    "FaultInjectionError",
    "MagicProtocolError",
    "ProgramError",
    "RunStats",
    "SimulationError",
    "Trace",
    "TraceEntry",
]
