"""Aggregate statistics for simulated CIM executions.

The paper reports four headline metrics per design point: throughput
(multiplications per million clock cycles), area (memory cells),
area-time product (cells / throughput) and the maximum number of write
operations applied to any single cell.  :class:`RunStats` collects the
raw counters these are computed from, and :class:`DesignMetrics` is the
value type used across the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class RunStats:
    """Raw operation counters from one simulated execution."""

    cycles: int = 0
    nor_ops: int = 0
    not_ops: int = 0
    init_ops: int = 0
    read_ops: int = 0
    write_ops: int = 0
    shift_ops: int = 0
    cell_writes: int = 0
    energy_fj: float = 0.0
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: READ results (name -> value) produced by the run that built these
    #: stats.  Per-run: never carries names from an earlier execute().
    results: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "RunStats") -> "RunStats":
        """Return a new :class:`RunStats` summing *self* and *other*.

        Result names collide last-wins (*other* shadows *self*), the
        same way a later READ to an existing name would."""
        merged = RunStats(
            cycles=self.cycles + other.cycles,
            nor_ops=self.nor_ops + other.nor_ops,
            not_ops=self.not_ops + other.not_ops,
            init_ops=self.init_ops + other.init_ops,
            read_ops=self.read_ops + other.read_ops,
            write_ops=self.write_ops + other.write_ops,
            shift_ops=self.shift_ops + other.shift_ops,
            cell_writes=self.cell_writes + other.cell_writes,
            energy_fj=self.energy_fj + other.energy_fj,
            op_counts=dict(self.op_counts),
            results={**self.results, **other.results},
        )
        for key, value in other.op_counts.items():
            merged.op_counts[key] = merged.op_counts.get(key, 0) + value
        return merged


@dataclass(frozen=True)
class DesignMetrics:
    """Headline metrics for one design point, as reported in Table I.

    Attributes
    ----------
    name:
        Human-readable design identifier (e.g. ``"ours"``, ``"multpim"``).
    n_bits:
        Operand width of the multiplication in bits.
    latency_cc:
        Latency of a single multiplication in clock cycles.
    area_cells:
        Number of memory cells (memristors) occupied by the design.
    throughput_per_mcc:
        Completed multiplications per 10^6 clock cycles.  For pipelined
        designs this exceeds ``1e6 / latency_cc``.
    max_writes_per_cell:
        Maximum number of write operations any single cell receives
        during one multiplication (after wear-leveling, if applicable).
    """

    name: str
    n_bits: int
    latency_cc: int
    area_cells: int
    throughput_per_mcc: float
    max_writes_per_cell: Optional[int] = None

    @property
    def atp(self) -> float:
        """Area-time product: cells divided by throughput (paper's ATP)."""
        if self.throughput_per_mcc <= 0:
            raise ValueError("throughput must be positive to compute ATP")
        return self.area_cells / self.throughput_per_mcc

    def speedup_over(self, other: "DesignMetrics") -> float:
        """Throughput ratio of *self* relative to *other*."""
        return self.throughput_per_mcc / other.throughput_per_mcc

    def atp_improvement_over(self, other: "DesignMetrics") -> float:
        """ATP ratio *other*/*self* (>1 means *self* is better)."""
        return other.atp / self.atp
