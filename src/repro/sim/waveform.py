"""Row-activity visualisation from execution traces.

Turns a :class:`~repro.sim.trace.Trace` of an executed MAGIC program
into a text "waveform": one line per row of the crossbar, one column
per cycle, with a mark wherever the row was read (``r``), written
(``W``), initialised (``i``), or both read and written (``*``).  Useful
for inspecting stage schedules and for documentation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.magic.ops import (
    Init,
    MicroOp,
    Nop,
    Nor,
    Not,
    ParallelNor,
    ParallelNot,
    Read,
    Shift,
    Write,
)
from repro.magic.program import Program

MARK_READ = "r"
MARK_WRITE = "W"
MARK_INIT = "i"
MARK_BOTH = "*"
MARK_IDLE = "."


def _activity(op: MicroOp) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(rows read, rows written) by one op."""
    if isinstance(op, Init):
        return (), op.rows
    if isinstance(op, Nor):
        return op.in_rows, (op.out_row,)
    if isinstance(op, Not):
        return (op.in_row,), (op.out_row,)
    if isinstance(op, Write):
        return (), (op.row,)
    if isinstance(op, Read):
        return (op.row,), ()
    if isinstance(op, Shift):
        return (op.src_row,), (op.dst_row,) + tuple(op.also_init)
    if isinstance(op, (ParallelNor, ParallelNot)):
        reads: List[int] = []
        writes: List[int] = []
        for g in op.gates:
            reads.extend(g.in_rows if isinstance(g, Nor) else (g.in_row,))
            writes.append(g.out_row)
        return tuple(dict.fromkeys(reads)), tuple(writes)
    return (), ()


def activity_grid(program: Program) -> Dict[int, List[str]]:
    """Per-row activity marks, one entry per elapsed cycle."""
    total = program.cycle_count
    rows = program.rows_touched()
    grid: Dict[int, List[str]] = {row: [MARK_IDLE] * total for row in rows}
    cycle = 0
    for op in program.ops:
        reads, writes = _activity(op)
        for tick in range(op.cycles):
            for row in reads:
                current = grid[row][cycle + tick]
                grid[row][cycle + tick] = (
                    MARK_BOTH if current in (MARK_WRITE, MARK_INIT) else MARK_READ
                )
            for row in writes:
                mark = MARK_INIT if isinstance(op, Init) else MARK_WRITE
                current = grid[row][cycle + tick]
                grid[row][cycle + tick] = (
                    MARK_BOTH if current == MARK_READ else mark
                )
        cycle += op.cycles
    return grid


def render(program: Program, max_cycles: int = 120) -> str:
    """Text waveform of *program* (truncated to *max_cycles* columns)."""
    grid = activity_grid(program)
    total = program.cycle_count
    shown = min(total, max_cycles)
    header = f"{program.label or 'program'}: {total} cc, rows {min(grid)}..{max(grid)}"
    lines = [header]
    ruler = "".join(
        "|" if c % 10 == 0 else " " for c in range(shown)
    )
    lines.append(f"{'':>7}{ruler}")
    for row in sorted(grid):
        marks = "".join(grid[row][:shown])
        lines.append(f"r{row:<3} | {marks}")
    if total > shown:
        lines.append(f"... {total - shown} more cycles")
    lines.append(
        f"legend: {MARK_READ}=read {MARK_WRITE}=write "
        f"{MARK_INIT}=init {MARK_BOTH}=read+write {MARK_IDLE}=idle"
    )
    return "\n".join(lines)


def utilization(program: Program) -> Dict[int, float]:
    """Fraction of cycles each row is active (read or written)."""
    grid = activity_grid(program)
    total = program.cycle_count
    if total == 0:
        return {row: 0.0 for row in grid}
    return {
        row: sum(mark != MARK_IDLE for mark in marks) / total
        for row, marks in grid.items()
    }
