"""Optional execution tracing for MAGIC programs.

A :class:`Trace` records one entry per executed micro-op.  Tracing is
disabled by default (``Trace(enabled=False)`` is a cheap no-op sink) and
is primarily useful for debugging stage schedules and for the examples
that visualise array activity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Deque, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEntry:
    """One executed micro-op: (cycle, opcode, human-readable detail)."""

    cycle: int
    opcode: str
    detail: str


@dataclass
class Trace:
    """Append-only log of executed micro-ops.

    Parameters
    ----------
    enabled:
        When false, :meth:`record` is a no-op, keeping the hot execution
        path allocation-free.
    limit:
        Maximum number of retained entries; older entries are dropped
        once the limit is exceeded (``None`` keeps everything).  The
        buffer is a ``deque(maxlen=limit)``, so overflowing is O(1) per
        entry rather than an O(n) front-slice.
    """

    enabled: bool = False
    limit: Optional[int] = None
    entries: Deque[TraceEntry] = field(default_factory=deque)
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"trace limit must be non-negative: {self.limit}")
        # Rebuild as a bounded deque regardless of what iterable the
        # caller supplied (a plain list in the historical API).
        self.entries = deque(self.entries, maxlen=self.limit)

    def record(self, cycle: int, opcode: str, detail: str = "") -> None:
        """Append one entry if tracing is enabled."""
        if not self.enabled:
            return
        if self.limit is not None and len(self.entries) == self.limit:
            # maxlen evicts the oldest entry silently; keep the count.
            self.dropped += 1
        self.entries.append(TraceEntry(cycle, opcode, detail))

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def opcode_histogram(self) -> List[Tuple[str, int]]:
        """Return (opcode, count) pairs sorted by descending count."""
        counts: dict = {}
        for entry in self.entries:
            counts[entry.opcode] = counts.get(entry.opcode, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def format(self, first: int = 20) -> str:
        """Render the first *first* entries as an aligned text table."""
        lines = [f"{'cycle':>8}  {'op':<10} detail"]
        for entry in islice(self.entries, first):
            lines.append(f"{entry.cycle:>8}  {entry.opcode:<10} {entry.detail}")
        remaining = len(self.entries) - first
        if remaining > 0:
            lines.append(f"... {remaining} more entries")
        return "\n".join(lines)
