"""Optional execution tracing for MAGIC programs.

A :class:`Trace` records one entry per executed micro-op.  Tracing is
disabled by default (``Trace(enabled=False)`` is a cheap no-op sink) and
is primarily useful for debugging stage schedules and for the examples
that visualise array activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEntry:
    """One executed micro-op: (cycle, opcode, human-readable detail)."""

    cycle: int
    opcode: str
    detail: str


@dataclass
class Trace:
    """Append-only log of executed micro-ops.

    Parameters
    ----------
    enabled:
        When false, :meth:`record` is a no-op, keeping the hot execution
        path allocation-free.
    limit:
        Maximum number of retained entries; older entries are dropped
        once the limit is exceeded (``None`` keeps everything).
    """

    enabled: bool = False
    limit: Optional[int] = None
    entries: List[TraceEntry] = field(default_factory=list)
    dropped: int = 0

    def record(self, cycle: int, opcode: str, detail: str = "") -> None:
        """Append one entry if tracing is enabled."""
        if not self.enabled:
            return
        self.entries.append(TraceEntry(cycle, opcode, detail))
        if self.limit is not None and len(self.entries) > self.limit:
            overflow = len(self.entries) - self.limit
            del self.entries[:overflow]
            self.dropped += overflow

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def opcode_histogram(self) -> List[Tuple[str, int]]:
        """Return (opcode, count) pairs sorted by descending count."""
        counts: dict = {}
        for entry in self.entries:
            counts[entry.opcode] = counts.get(entry.opcode, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def format(self, first: int = 20) -> str:
        """Render the first *first* entries as an aligned text table."""
        lines = [f"{'cycle':>8}  {'op':<10} detail"]
        for entry in self.entries[:first]:
            lines.append(f"{entry.cycle:>8}  {entry.opcode:<10} {entry.detail}")
        remaining = len(self.entries) - first
        if remaining > 0:
            lines.append(f"... {remaining} more entries")
        return "\n".join(lines)
