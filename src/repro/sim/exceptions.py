"""Exception hierarchy for the CIM simulator.

All errors raised by the :mod:`repro` simulation stack derive from
:class:`SimulationError` so that callers can catch simulator problems
without masking unrelated bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class CrossbarError(SimulationError):
    """Base class for errors raised by the crossbar substrate."""


class AddressError(CrossbarError):
    """A row/column address is outside the crossbar dimensions."""


class MagicProtocolError(SimulationError):
    """A MAGIC micro-op violated the MAGIC execution discipline.

    Typical causes: a NOR output memristor that was not initialised to
    logic one, or input and output rows that do not share bit lines.
    """


class EnduranceExhaustedError(CrossbarError):
    """A memristor exceeded its rated write endurance."""


class FaultInjectionError(CrossbarError):
    """A fault-injection request is inconsistent (e.g. unknown fault kind)."""


class ProgramError(SimulationError):
    """A MAGIC program is malformed (bad operand shapes, unknown opcode)."""


class DesignError(SimulationError):
    """A design-level constraint is violated (e.g. unsupported bit width)."""
