"""Exception hierarchy for the CIM simulator.

All errors raised by the :mod:`repro` simulation stack derive from
:class:`SimulationError` so that callers can catch simulator problems
without masking unrelated bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class CrossbarError(SimulationError):
    """Base class for errors raised by the crossbar substrate."""


class AddressError(CrossbarError):
    """A row/column address is outside the crossbar dimensions."""


class MagicProtocolError(SimulationError):
    """A MAGIC micro-op violated the MAGIC execution discipline.

    Typical causes: a NOR output memristor that was not initialised to
    logic one, or input and output rows that do not share bit lines.
    """


class EnduranceExhaustedError(CrossbarError):
    """A memristor exceeded its rated write endurance."""


class FaultInjectionError(CrossbarError):
    """A fault-injection request is inconsistent (e.g. unknown fault kind)."""


class SpareRowsExhaustedError(CrossbarError):
    """A row remap was requested but the array has no spare rows left."""


class StageSelfCheckError(SimulationError):
    """A pipeline stage's in-band self-check caught corrupted data.

    Raised *unconditionally* (never via ``assert``, which ``python -O``
    strips) by the Karatsuba stages when a sensed result disagrees with
    either its residue code (``check="residue"``) or the pure-integer
    differential plan (``check="differential"``).  Carries enough
    context for the recovery layer to localise the faulty subarray.
    """

    def __init__(
        self,
        message: str,
        stage: str = "",
        check: str = "differential",
        location: str = "",
    ):
        super().__init__(message)
        #: Which pipeline stage detected the corruption
        #: (``"precompute"`` / ``"multiply"`` / ``"postcompute"``).
        self.stage = stage
        #: Which self-check fired: ``"residue"`` (the in-band ABFT
        #: code) or ``"differential"`` (full-width plan comparison).
        self.check = check
        #: Stage-local label of the failing operation (e.g. the chunk
        #: sum or pass name), for fault localisation.
        self.location = location


class ProgramError(SimulationError):
    """A MAGIC program is malformed (bad operand shapes, unknown opcode)."""


class DesignError(SimulationError):
    """A design-level constraint is violated (e.g. unsupported bit width)."""
