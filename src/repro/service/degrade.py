"""Wear-aware dispatch, fault recovery, graceful degradation.

Robustness policies for the service, in the spirit of Count2Multiply's
treatment of fault tolerance as a first-class concern for bulk-bitwise
in-memory engines:

* **wear-aware rotation** — :func:`make_wear_aware_ranker` extends the
  dispatcher's least-loaded policy with the hottest-cell write count
  (from :mod:`repro.crossbar.endurance` accounting), so equally loaded
  ways rotate towards the least-worn device;
* **endurance budgets** — :class:`EndurancePolicy` retires a way whose
  hottest cell crosses its write budget.  The pool keeps serving with
  fewer ways (graceful degradation) until none remain, at which point
  dispatch raises :class:`~repro.service.requests.NoHealthyWayError`;
* **fault recovery** — :class:`DegradeController.execute` verifies
  every simulated product against the pure-Python oracle ``a * b``.
  Three detection channels feed one recovery action (quarantine the
  way, replay the whole batch on the next healthy way, up to
  ``max_retries`` times):

  1. a mid-program :class:`~repro.sim.exceptions.SimulationError` —
     e.g. an ``sa0`` cell violating the MAGIC init precondition;
  2. an :class:`AssertionError` from a stage's built-in differential
     self-check (the Karatsuba stages assert every sensed sum against
     a pure-integer plan, so ``sa1`` corruption typically trips here);
  3. a product that disagrees with the oracle — the service-level
     guarantee, kept independent of whichever checks the datapath
     beneath happens to implement.

The controller is pure policy: all mechanics (way selection, SIMD
execution, cache eviction) live in :class:`~repro.service.workers.BankDispatcher`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.crossbar.endurance import analyze
from repro.service.requests import NoHealthyWayError
from repro.service.workers import BankDispatcher, DispatchReport, Way, WayRanker
from repro.sim.exceptions import SimulationError

#: Default per-cell write budget before a way retires.  Real ReRAM
#: tolerates 1e10-1e11 writes (paper Sec. II-A); the default is far
#: smaller so tests and benches can exercise retirement.
DEFAULT_WRITE_BUDGET = 10**10


class EndurancePolicy:
    """Retire-on-budget policy over the hottest cell of each way."""

    def __init__(self, write_budget: int = DEFAULT_WRITE_BUDGET):
        if write_budget < 1:
            raise ValueError("write budget must be positive")
        self.write_budget = write_budget

    def used(self, way: Way) -> int:
        return way.max_writes()

    def remaining(self, way: Way) -> int:
        return max(0, self.write_budget - self.used(way))

    def exhausted(self, way: Way) -> bool:
        return self.used(way) >= self.write_budget

    def remaining_fraction(self, way: Way) -> float:
        return self.remaining(way) / self.write_budget


def make_wear_aware_ranker(policy: EndurancePolicy) -> WayRanker:
    """Least-loaded first, then least-worn, then stable by id.

    Load dominates (throughput comes from spreading batches), wear
    breaks ties — idle pools therefore rotate across ways instead of
    hammering way 0, spreading endurance consumption.
    """

    def ranker(way: Way) -> Tuple:
        return (way.busy_cc, policy.used(way), way.way_id)

    return ranker


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one batch execution under the degrade policies."""

    report: DispatchReport
    #: Replays spent recovering from corrupted ways.
    retries: int
    #: Ways quarantined while producing this batch.
    faulty_ways: Tuple[str, ...]
    #: Ways retired for endurance after this batch.
    retired_ways: Tuple[str, ...]


class DegradeController:
    """Executes batches with verification, retry and endurance checks."""

    def __init__(
        self,
        dispatcher: BankDispatcher,
        policy: Optional[EndurancePolicy] = None,
        max_retries: int = 3,
        oracle: Callable[[int, int], int] = lambda a, b: a * b,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.dispatcher = dispatcher
        self.policy = policy if policy is not None else EndurancePolicy()
        self.max_retries = max_retries
        self.oracle = oracle
        # Wear-aware rotation rides on the dispatcher's ranking hook.
        self.dispatcher.ranker = make_wear_aware_ranker(self.policy)

    # ------------------------------------------------------------------
    def execute(
        self, n_bits: int, pairs: Sequence[Tuple[int, int]]
    ) -> RecoveryReport:
        """Run *pairs* as one batch, recovering from faulty ways.

        Raises :class:`NoHealthyWayError` when retries are exhausted or
        no healthy way remains for the width.
        """
        pairs = list(pairs)
        expected = [self.oracle(a, b) for a, b in pairs]
        faulty: List[str] = []
        retries = 0
        while True:
            way = self.dispatcher.select_way(n_bits, exclude=set(faulty))
            try:
                report = self.dispatcher.run_on(way, pairs)
            except SimulationError:
                # sa0-style faults break the MAGIC protocol mid-program.
                self.dispatcher.quarantine(way, "fault: protocol violation")
                faulty.append(way.way_id)
                retries += 1
                self._check_retries(n_bits, retries, faulty)
                continue
            except AssertionError:
                # A stage's differential self-check caught divergence
                # between the sensed bits and its pure-integer plan
                # (how sa1 corruption typically surfaces).
                self.dispatcher.quarantine(way, "fault: stage self-check")
                faulty.append(way.way_id)
                retries += 1
                self._check_retries(n_bits, retries, faulty)
                continue
            if report.products != expected:
                # Service-level oracle check: defence in depth against
                # corruption the stages themselves do not catch.
                self.dispatcher.quarantine(way, "fault: corrupted product")
                faulty.append(way.way_id)
                retries += 1
                self._check_retries(n_bits, retries, faulty)
                continue
            retired = self._retire_exhausted(n_bits)
            return RecoveryReport(
                report=report,
                retries=retries,
                faulty_ways=tuple(faulty),
                retired_ways=retired,
            )

    def _check_retries(
        self, n_bits: int, retries: int, faulty: List[str]
    ) -> None:
        if retries > self.max_retries:
            raise NoHealthyWayError(
                f"batch for n={n_bits} failed on {len(faulty)} ways "
                f"({', '.join(faulty)}); retry budget exhausted"
            )

    def _retire_exhausted(self, n_bits: int) -> Tuple[str, ...]:
        """Graceful degradation: drop ways past their write budget.

        The last healthy way of a pool is kept in service even when
        exhausted — degraded service beats none; the endurance snapshot
        still reports it as over budget.
        """
        retired: List[str] = []
        for way in self.dispatcher.healthy_ways(n_bits):
            if not self.policy.exhausted(way):
                continue
            if len(self.dispatcher.healthy_ways(n_bits)) <= 1:
                break
            way.retire("endurance budget exhausted")
            retired.append(way.way_id)
        return tuple(retired)

    # ------------------------------------------------------------------
    def endurance_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-way wear view built on :func:`repro.crossbar.endurance.analyze`."""
        snapshot: Dict[str, Dict[str, object]] = {}
        for way in self.dispatcher.all_ways():
            controller = way.pipeline.controller
            reports = [
                analyze(controller.precompute.array),
                analyze(controller.postcompute.array),
            ]
            snapshot[way.way_id] = {
                "healthy": way.healthy,
                "retired_reason": way.retired_reason,
                "max_writes": way.max_writes(),
                "write_budget": self.policy.write_budget,
                "remaining_fraction": self.policy.remaining_fraction(way),
                "imbalance": max(r.imbalance for r in reports),
            }
        return snapshot
