"""Wear-aware dispatch, fault recovery, graceful degradation.

Robustness policies for the service, in the spirit of Count2Multiply's
treatment of fault tolerance as a first-class concern for bulk-bitwise
in-memory engines:

* **wear-aware rotation** — :func:`make_wear_aware_ranker` extends the
  dispatcher's least-loaded policy with the hottest-cell write count
  (from :mod:`repro.crossbar.endurance` accounting), so equally loaded
  ways rotate towards the least-worn device;
* **endurance budgets** — :class:`EndurancePolicy` retires a way whose
  hottest cell crosses its write budget.  The pool keeps serving with
  fewer ways (graceful degradation) until none remain, at which point
  dispatch raises :class:`~repro.service.requests.NoHealthyWayError`;
* **fault recovery** — :class:`DegradeController.execute` runs a
  detection-driven escalation ladder.  Detection is *in-band*: the
  Karatsuba stages verify every sensed sub-result against mod-(2^r − 1)
  residue predictions (:mod:`repro.reliability.residue`) and raise
  :class:`~repro.sim.exceptions.StageSelfCheckError`; ``sa0`` cells
  violate the MAGIC init precondition and raise
  :class:`~repro.sim.exceptions.MagicProtocolError`.  Each detection
  climbs the ladder:

  1. **diagnose + remap** — write-verify the way's crossbars
     (:meth:`~repro.crossbar.array.CrossbarArray.verify_row_writable`)
     and remap defective rows onto spare word lines; an empty diagnosis
     means the upset was transient and a replay alone suffices;
  2. **replay on the same way** — re-run the batch in place (budgeted
     by ``max_inplace_replays`` per way), so a remapped permanent fault
     or a transient flip costs no healthy way;
  3. **quarantine and retry** — when spares or the in-place budget are
     exhausted, quarantine the way and replay on the next healthy one
     (budgeted by ``max_retries``);
  4. **degrade** — no healthy way / budget left raises
     :class:`NoHealthyWayError`.

  The pure-Python oracle ``a * b`` is demoted to an opt-in audit mode
  (``oracle_audit=True``): production detection is the in-band residue
  checks; the audit exists for differential testing and chaos drills.

The controller is pure policy: all mechanics (way selection, SIMD
execution, cache eviction) live in :class:`~repro.service.workers.BankDispatcher`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crossbar.endurance import analyze
from repro.service.requests import NoHealthyWayError
from repro.service.workers import BankDispatcher, DispatchReport, Way, WayRanker
from repro.telemetry import spans as _telemetry
from repro.sim.exceptions import (
    SimulationError,
    SpareRowsExhaustedError,
    StageSelfCheckError,
)

#: Default per-cell write budget before a way retires.  Real ReRAM
#: tolerates 1e10-1e11 writes (paper Sec. II-A); the default is far
#: smaller so tests and benches can exercise retirement.
DEFAULT_WRITE_BUDGET = 10**10

#: Default batch replays allowed on one way after in-place repair.
DEFAULT_INPLACE_REPLAYS = 2


class EndurancePolicy:
    """Retire-on-budget policy over the hottest cell of each way."""

    def __init__(self, write_budget: int = DEFAULT_WRITE_BUDGET):
        if write_budget < 1:
            raise ValueError("write budget must be positive")
        self.write_budget = write_budget

    def used(self, way: Way) -> int:
        return way.max_writes()

    def remaining(self, way: Way) -> int:
        return max(0, self.write_budget - self.used(way))

    def exhausted(self, way: Way) -> bool:
        return self.used(way) >= self.write_budget

    def remaining_fraction(self, way: Way) -> float:
        return self.remaining(way) / self.write_budget


def make_wear_aware_ranker(policy: EndurancePolicy) -> WayRanker:
    """Least-loaded first, then least-worn, then stable by id.

    Load dominates (throughput comes from spreading batches), wear
    breaks ties — idle pools therefore rotate across ways instead of
    hammering way 0, spreading endurance consumption.
    """

    def ranker(way: Way) -> Tuple:
        return (way.busy_cc, policy.used(way), way.way_id)

    return ranker


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one batch execution under the degrade policies."""

    report: DispatchReport
    #: Replays spent recovering on *other* ways (quarantine rung).
    retries: int
    #: Ways quarantined while producing this batch.
    faulty_ways: Tuple[str, ...]
    #: Ways retired for endurance after this batch.
    retired_ways: Tuple[str, ...]
    #: In-band fault detections (self-checks, protocol violations,
    #: audit mismatches) encountered while producing this batch.
    detections: int = 0
    #: Batch replays on the same way after an in-place diagnosis.
    inplace_replays: int = 0
    #: Rows remapped onto spare word lines: (way_id, stage, row).
    remapped_rows: Tuple[Tuple[str, str, int], ...] = field(default=())
    #: Detection channel of each detection, in order: ``"residue"`` or
    #: ``"differential"`` (stage self-checks), ``"protocol"`` (MAGIC
    #: precondition), ``"audit"`` (opt-in oracle).
    detection_checks: Tuple[str, ...] = field(default=())
    #: Ids of the client requests the batch carried (empty when the
    #: caller executed raw pairs without request context).
    request_ids: Tuple[int, ...] = field(default=())


class DegradeController:
    """Executes batches under the detection-driven escalation ladder."""

    def __init__(
        self,
        dispatcher: BankDispatcher,
        policy: Optional[EndurancePolicy] = None,
        max_retries: int = 3,
        oracle: Callable[[int, int], int] = lambda a, b: a * b,
        max_inplace_replays: int = DEFAULT_INPLACE_REPLAYS,
        oracle_audit: bool = False,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if max_inplace_replays < 0:
            raise ValueError("max_inplace_replays must be non-negative")
        self.dispatcher = dispatcher
        self.policy = policy if policy is not None else EndurancePolicy()
        self.max_retries = max_retries
        self.max_inplace_replays = max_inplace_replays
        self.oracle = oracle
        self.oracle_audit = oracle_audit
        # Wear-aware rotation rides on the dispatcher's ranking hook.
        self.dispatcher.ranker = make_wear_aware_ranker(self.policy)

    # ------------------------------------------------------------------
    def execute(
        self,
        n_bits: int,
        pairs: Sequence[Tuple[int, int]],
        request_ids: Sequence[int] = (),
    ) -> RecoveryReport:
        """Run *pairs* as one batch, recovering from detected faults.

        *request_ids* (when the batch came from the scheduler) are
        threaded through to the dispatch span, the recovery report and
        every escalation event, so a trace export correlates each
        ladder climb back to the client requests it affected.

        Raises :class:`NoHealthyWayError` when retries are exhausted or
        no healthy way remains for the width.
        """
        pairs = list(pairs)
        request_ids = tuple(request_ids)
        expected = (
            [self.oracle(a, b) for a, b in pairs] if self.oracle_audit else None
        )
        faulty: List[str] = []
        remapped: List[Tuple[str, str, int]] = []
        replays_on_way: Dict[str, int] = {}
        checks: List[str] = []
        inplace_replays = 0
        retries = 0
        way: Optional[Way] = None
        while True:
            if way is None:
                way = self.dispatcher.select_way(n_bits, exclude=set(faulty))
            try:
                report = self.dispatcher.run_on(
                    way, pairs, request_ids=request_ids
                )
            except StageSelfCheckError as err:
                # In-band detection: a stage's residue or differential
                # self-check caught divergence between the sensed bits
                # and its prediction (how sa1 / transient corruption
                # typically surfaces).
                checks.append(err.check)
                self._event(
                    "degrade.detect",
                    check=err.check,
                    way=way.way_id,
                    request_ids=list(request_ids),
                )
                if self._repair_in_place(way, remapped, replays_on_way):
                    inplace_replays += 1
                    continue  # replay on the repaired way
                retries = self._escalate(
                    n_bits,
                    way,
                    f"fault: {err.check} self-check in {err.stage or 'stage'}",
                    faulty,
                    retries,
                    request_ids,
                )
                way = None
                continue
            except SimulationError:
                # sa0-style faults break the MAGIC protocol mid-program.
                checks.append("protocol")
                self._event(
                    "degrade.detect",
                    check="protocol",
                    way=way.way_id,
                    request_ids=list(request_ids),
                )
                if self._repair_in_place(way, remapped, replays_on_way):
                    inplace_replays += 1
                    continue  # replay on the repaired way
                retries = self._escalate(
                    n_bits,
                    way,
                    "fault: protocol violation",
                    faulty,
                    retries,
                    request_ids,
                )
                way = None
                continue
            if expected is not None and report.products != expected:
                # Opt-in audit: defence in depth against corruption the
                # in-band checks beneath do not catch.  No localisation
                # is available, so escalate straight to quarantine.
                checks.append("audit")
                self._event(
                    "degrade.detect",
                    check="audit",
                    way=way.way_id,
                    request_ids=list(request_ids),
                )
                retries = self._escalate(
                    n_bits,
                    way,
                    "audit: corrupted product",
                    faulty,
                    retries,
                    request_ids,
                )
                way = None
                continue
            retired = self._retire_exhausted(n_bits)
            return RecoveryReport(
                report=report,
                retries=retries,
                faulty_ways=tuple(faulty),
                retired_ways=retired,
                detections=len(checks),
                inplace_replays=inplace_replays,
                remapped_rows=tuple(remapped),
                detection_checks=tuple(checks),
                request_ids=request_ids,
            )

    def _repair_in_place(
        self,
        way: Way,
        remapped: List[Tuple[str, str, int]],
        replays_on_way: Dict[str, int],
    ) -> bool:
        """Ladder rungs 1–2: write-verify diagnosis, spare-row remap,
        and replay on the same way.

        Returns ``False`` when the way's in-place budget or its spare
        rows are exhausted — the caller escalates to quarantine.  An
        empty diagnosis (no defective row found) means the upset was
        transient; the replay alone recovers it.
        """
        used = replays_on_way.get(way.way_id, 0)
        if used >= self.max_inplace_replays:
            return False
        try:
            repairs = way.pipeline.controller.diagnose_and_repair()
        except SpareRowsExhaustedError:
            return False
        replays_on_way[way.way_id] = used + 1
        for stage, rows in repairs.items():
            remapped.extend((way.way_id, stage, row) for row in rows)
            for row in rows:
                self._event(
                    "degrade.remap", way=way.way_id, stage=stage, row=row
                )
        return True

    def _escalate(
        self,
        n_bits: int,
        way: Way,
        reason: str,
        faulty: List[str],
        retries: int,
        request_ids: Tuple[int, ...] = (),
    ) -> int:
        """Ladder rung 3: quarantine the way and charge a retry."""
        self.dispatcher.quarantine(way, reason)
        faulty.append(way.way_id)
        retries += 1
        self._event(
            "degrade.quarantine",
            way=way.way_id,
            reason=reason,
            request_ids=list(request_ids),
        )
        self._check_retries(n_bits, retries, faulty)
        return retries

    @staticmethod
    def _event(name: str, **attrs: object) -> None:
        tracer = _telemetry.active()
        if tracer is not None:
            tracer.event(name, **attrs)

    def _check_retries(
        self, n_bits: int, retries: int, faulty: List[str]
    ) -> None:
        if retries > self.max_retries:
            raise NoHealthyWayError(
                f"batch for n={n_bits} failed on {len(faulty)} ways "
                f"({', '.join(faulty)}); retry budget exhausted"
            )

    def _retire_exhausted(self, n_bits: int) -> Tuple[str, ...]:
        """Graceful degradation: drop ways past their write budget.

        The last healthy way of a pool is kept in service even when
        exhausted — degraded service beats none; the endurance snapshot
        still reports it as over budget.
        """
        retired: List[str] = []
        for way in self.dispatcher.healthy_ways(n_bits):
            if not self.policy.exhausted(way):
                continue
            if len(self.dispatcher.healthy_ways(n_bits)) <= 1:
                break
            way.retire("endurance budget exhausted")
            retired.append(way.way_id)
        return tuple(retired)

    # ------------------------------------------------------------------
    @staticmethod
    def _crossbar_stages(controller) -> List[Tuple[str, object]]:
        """(name, stage) pairs of the controller's crossbar-backed
        stages.  Controllers advertise their stage attributes through
        ``stage_attr_names`` (the Karatsuba names are the fallback);
        stages without a crossbar array — the Toom-3 point-wise row
        multipliers, the schoolbook numeric model — are skipped."""
        names = getattr(
            controller, "stage_attr_names", ("precompute", "postcompute")
        )
        stages = []
        for name in names:
            stage = getattr(controller, name, None)
            if stage is not None and getattr(stage, "array", None) is not None:
                stages.append((name, stage))
        return stages

    def endurance_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-way wear view built on :func:`repro.crossbar.endurance.analyze`."""
        snapshot: Dict[str, Dict[str, object]] = {}
        for way in self.dispatcher.all_ways():
            controller = way.pipeline.controller
            reports = [
                analyze(stage.array)
                for _, stage in self._crossbar_stages(controller)
            ]
            snapshot[way.way_id] = {
                "healthy": way.healthy,
                "retired_reason": way.retired_reason,
                "max_writes": way.max_writes(),
                "write_budget": self.policy.write_budget,
                "remaining_fraction": self.policy.remaining_fraction(way),
                "imbalance": max(
                    (r.imbalance for r in reports), default=0.0
                ),
            }
        return snapshot

    def reliability_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-way reliability view: spares, remaps, residue checks."""
        snapshot: Dict[str, Dict[str, object]] = {}
        for way in self.dispatcher.all_ways():
            controller = way.pipeline.controller
            remap: Dict[str, Dict[int, int]] = {}
            for name, stage in self._crossbar_stages(controller):
                table = stage.array.remap_table()
                if table:
                    remap[name] = table
            snapshot[way.way_id] = {
                "healthy": way.healthy,
                "spare_rows_free": controller.spare_rows_free(),
                "remap": remap,
                "residue": controller.residue_stats(),
            }
        return snapshot
