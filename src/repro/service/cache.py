"""LRU caches of the multiplication service.

Two cache layers sit in front of the simulated datapath:

* :class:`ProgramCache` — keyed by ``(n_bits, depth, variant)``, holds
  *warm pipelines*: a :class:`~repro.karatsuba.pipeline.KaratsubaPipeline`
  together with the compiled stage mega-programs its executors have
  accumulated (see :class:`repro.magic.executor.CompiledProgram`).
  Building a pipeline for a new width costs program synthesis plus
  compilation; recycling a retired-then-revived width pool is a cache
  hit that skips all of it.
* :class:`OperandCache` — keyed by the (commutatively normalised)
  operand pair and width, memoises finished products so repeated
  requests never re-enter the scheduler at all.

Both are thin wrappers over one generic :class:`LRUCache` that counts
hits/misses/evictions; the service surfaces those counters in its
metrics snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

V = TypeVar("V")


@dataclass
class CacheStats:
    """Mutable hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class LRUCache:
    """A bounded mapping with least-recently-used eviction and stats."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[object]:
        """Value for *key* (refreshing recency), or None on a miss."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert/replace *key*, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Cached value for *key*, creating it via *factory* on a miss."""
        value = self.get(key)
        if value is None:
            value = factory()
            self.put(key, value)
        return value  # type: ignore[return-value]


#: Cache key of one compiled datapath configuration.
ProgramKey = Tuple[int, int, str]


class ProgramCache:
    """Warm-pipeline cache keyed by ``(n_bits, depth, variant)``.

    The cached value is whatever the dispatcher considers a compiled
    way (today a :class:`~repro.karatsuba.pipeline.KaratsubaPipeline`;
    the key carries Karatsuba *depth* and a *variant* tag so future
    designs — squarers, Toom-Cook ways — share the cache without key
    collisions).
    """

    def __init__(self, capacity: int = 16):
        self._cache = LRUCache(capacity)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    @staticmethod
    def key(n_bits: int, depth: int = 2, variant: str = "pipeline") -> ProgramKey:
        return (n_bits, depth, variant)

    def get_or_build(
        self,
        n_bits: int,
        factory: Callable[[], V],
        depth: int = 2,
        variant: str = "pipeline",
    ) -> V:
        return self._cache.get_or_create(
            self.key(n_bits, depth, variant), factory
        )

    def discard(self, n_bits: int, depth: int = 2, variant: str = "pipeline") -> None:
        """Drop an entry (e.g. a pipeline quarantined by fault handling)."""
        self._cache._entries.pop(self.key(n_bits, depth, variant), None)


class OperandCache:
    """Product memo keyed by operand pair and width.

    Multiplication is commutative, so the key orders the operands;
    ``(a, b)`` and ``(b, a)`` share one entry.  Cryptographic traffic
    is repetitive enough (fixed moduli, repeated points, window tables)
    that this is a genuine service-level win, not just a test artifact.
    """

    def __init__(self, capacity: int = 4096):
        self._cache = LRUCache(capacity)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    @staticmethod
    def key(a: int, b: int, n_bits: int) -> Tuple[int, int, int]:
        low, high = (a, b) if a <= b else (b, a)
        return (low, high, n_bits)

    def lookup(self, a: int, b: int, n_bits: int) -> Optional[int]:
        return self._cache.get(self.key(a, b, n_bits))  # type: ignore[return-value]

    def store(self, a: int, b: int, n_bits: int, product: int) -> None:
        self._cache.put(self.key(a, b, n_bits), product)
