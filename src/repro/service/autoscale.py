"""Queue-depth-driven way autoscaling with hysteresis.

Open-loop traffic is bursty: a fixed ``ways_per_width`` either wastes
banks during lulls or queues unboundedly during spikes.  The
:class:`WayAutoscaler` watches each width's pending queue depth once
per logical tick and resizes the active portion of that width's way
pool (:meth:`~repro.service.workers.BankDispatcher.set_active_ways`):

* **scale-up** — depth at or above ``high_depth`` for ``up_ticks``
  consecutive observations adds one way (reactivating a warm way
  before building a new one), up to ``max_ways``;
* **scale-down** — depth at or below ``low_depth`` for ``down_ticks``
  consecutive observations parks one way (it stays warm for the next
  burst), down to ``min_ways``;
* **hysteresis** — the two streak counters reset whenever the depth
  crosses back over the respective watermark, and every scaling action
  resets both, so a depth oscillating between the watermarks never
  thrashes the pool.

Decisions depend only on the observed depth sequence, so a seeded
arrival schedule produces an identical scaling trace on every run —
the property the determinism suite and the committed ``BENCH_load``
baseline rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.service.workers import BankDispatcher

__all__ = ["AutoscalerConfig", "ScaleEvent", "WayAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tunables of one :class:`WayAutoscaler` (all per width)."""

    #: Floor on active ways (scale-down never goes below).
    min_ways: int = 1
    #: Ceiling on active ways (scale-up never goes above; may exceed
    #: ``ServiceConfig.ways_per_width`` — extra ways are built lazily).
    max_ways: int = 4
    #: Queue depth at/above which a tick counts toward scale-up.
    high_depth: int = 16
    #: Queue depth at/below which a tick counts toward scale-down.
    low_depth: int = 0
    #: Consecutive high-depth ticks required before adding a way.
    up_ticks: int = 2
    #: Consecutive low-depth ticks required before parking a way.
    down_ticks: int = 16

    def __post_init__(self) -> None:
        if self.min_ways < 1:
            raise ValueError("min_ways must be at least 1")
        if self.max_ways < self.min_ways:
            raise ValueError("max_ways must be >= min_ways")
        if self.low_depth >= self.high_depth:
            raise ValueError("low_depth must be below high_depth")
        if self.up_ticks < 1 or self.down_ticks < 1:
            raise ValueError("hysteresis windows must be at least 1 tick")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling action, for logs/tests."""

    tick: int
    n_bits: int
    direction: str  # "up" | "down"
    active_ways: int


@dataclass
class _WidthState:
    active: int
    above_ticks: int = 0
    below_ticks: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    last_depth: int = 0


class WayAutoscaler:
    """Per-width hysteresis controller over a dispatcher's way pools."""

    def __init__(self, dispatcher: BankDispatcher, config: AutoscalerConfig):
        self.dispatcher = dispatcher
        self.config = config
        self._states: Dict[int, _WidthState] = {}
        self.events: List[ScaleEvent] = []

    # ------------------------------------------------------------------
    def _state(self, n_bits: int) -> _WidthState:
        state = self._states.get(n_bits)
        if state is None:
            # Adopt whatever the pool currently runs, clamped into the
            # configured band.
            active = max(
                self.config.min_ways,
                min(self.config.max_ways, self.dispatcher.active_count(n_bits)),
            )
            self.dispatcher.set_active_ways(n_bits, active)
            state = self._states[n_bits] = _WidthState(active=active)
        return state

    def observe(self, tick: int, depths: Dict[int, int]) -> List[ScaleEvent]:
        """Feed one tick's per-width queue depths; returns any actions.

        Widths with a way pool but no pending work are observed at
        depth 0, so idle widths scale down without further arrivals.
        """
        cfg = self.config
        fired: List[ScaleEvent] = []
        widths = set(depths) | set(self.dispatcher.widths())
        for n_bits in sorted(widths):
            depth = depths.get(n_bits, 0)
            state = self._state(n_bits)
            state.last_depth = depth
            if depth >= cfg.high_depth:
                state.above_ticks += 1
                state.below_ticks = 0
            elif depth <= cfg.low_depth:
                state.below_ticks += 1
                state.above_ticks = 0
            else:
                state.above_ticks = 0
                state.below_ticks = 0
            if (
                state.above_ticks >= cfg.up_ticks
                and state.active < cfg.max_ways
            ):
                state.active = self.dispatcher.set_active_ways(
                    n_bits, state.active + 1
                )
                state.scale_ups += 1
                state.above_ticks = 0
                state.below_ticks = 0
                fired.append(
                    ScaleEvent(tick, n_bits, "up", state.active)
                )
            elif (
                state.below_ticks >= cfg.down_ticks
                and state.active > cfg.min_ways
            ):
                state.active = self.dispatcher.set_active_ways(
                    n_bits, state.active - 1
                )
                state.scale_downs += 1
                state.above_ticks = 0
                state.below_ticks = 0
                fired.append(
                    ScaleEvent(tick, n_bits, "down", state.active)
                )
        self.events.extend(fired)
        return fired

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for the service snapshot's ``autoscaler`` key."""
        return {
            "enabled": True,
            "min_ways": self.config.min_ways,
            "max_ways": self.config.max_ways,
            "widths": {
                n_bits: {
                    "active_ways": state.active,
                    "scale_ups": state.scale_ups,
                    "scale_downs": state.scale_downs,
                    "above_ticks": state.above_ticks,
                    "below_ticks": state.below_ticks,
                    "last_depth": state.last_depth,
                }
                for n_bits, state in sorted(self._states.items())
            },
        }
