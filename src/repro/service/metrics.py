"""Counters and histograms for the multiplication service.

Deliberately dependency-free and snapshot-oriented: every instrument
renders to plain dicts of ints/floats so the snapshot can be printed,
JSON-serialised, or asserted on in tests without touching the live
objects.  The modelling follows MemSPICE's lesson that per-op
accounting should surface as a reusable reporting layer rather than
stay buried inside executors.

Schema of :meth:`MetricsRegistry.snapshot` (documented for consumers —
``repro service-bench`` and ``benchmarks/bench_service.py``)::

    {
      "counters": {<name>: <int>, ...},
      "histograms": {
        <name>: {
          "count": <int>, "sum": <float>,
          "mean": <float>, "min": <float>, "max": <float>,
          "buckets": {"<=B0": n, ..., "+inf": n},   # cumulative-free
        },
        ...
      },
    }
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default bucket bounds for small-count distributions (queue depth,
#: batch occupancy).
COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

#: Default bucket bounds for cycle-denominated latencies.
LATENCY_BUCKETS = (1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000)


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with sum/extrema tracking.

    Buckets are upper-inclusive bounds; observations above the last
    bound land in the implicit ``+inf`` bucket.  Buckets hold plain
    (non-cumulative) counts.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "_min", "_max")

    def __init__(self, name: str, bounds: Sequence[Number] = COUNT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.bounds: List[Number] = list(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> Dict[str, object]:
        buckets = {
            f"<={bound}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
        }
        buckets["+inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean if self.count else 0.0,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Owns every instrument of one service instance.

    Instruments are created on first use (``counter(name)`` /
    ``histogram(name)``), so call sites never pre-declare; the snapshot
    is sorted by name for deterministic output.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Sequence[Number] = COUNT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }
