"""Admission control and batch-binning scheduler.

The service's throughput comes from feeding the batched bit-plane
executor *full* SIMD batches, but clients submit one multiplication at
a time.  The scheduler closes that gap:

* **admission control** — requests are validated
  (:class:`~repro.service.requests.MulRequest` does the width/operand
  checks) and the total number of queued requests is bounded; past the
  bound :class:`~repro.service.requests.QueueFullError` signals
  backpressure to the caller instead of queueing unboundedly.
* **binning** — pending requests group into bins keyed by
  ``(n_bits, depth)``.  Only same-shape jobs can share one bit-plane
  batch (every SIMD lane replays the same compiled program), which is
  exactly what the key encodes.
* **flush policy** — a bin flushes when it holds a full batch, or when
  it has aged past ``max_wait_ticks`` logical ticks (one tick per
  submission — the simulator has no wall clock, so submission count is
  the service's arrival process).  Within a flush, higher-priority
  requests drain first; ties keep FIFO order.

The scheduler never executes anything: it returns :class:`Flush`
work-items for the dispatch layer to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.karatsuba.pipeline import DEFAULT_BATCH_SIZE
from repro.service.requests import MulRequest, QueueFullError

#: Bin identity: only requests sharing both values may share a batch.
BinKey = Tuple[int, int]


@dataclass(frozen=True)
class Pending:
    """A queued request plus its arrival bookkeeping."""

    request: MulRequest
    enqueue_tick: int
    sequence: int
    #: Absolute tick by which this request's bin must flush so the
    #: request can still meet its deadline (``None`` = no constraint).
    #: Tighter than the bin's age-out when the admission layer derives
    #: it from ``deadline_cc`` minus the execution estimate.
    flush_by_tick: Optional[int] = None


@dataclass(frozen=True)
class Flush:
    """One batch of same-shape requests released for execution."""

    key: BinKey
    pending: Tuple[Pending, ...]
    #: Why the bin flushed: "full", "timeout", "deadline" or "drain".
    reason: str
    tick: int

    @property
    def n_bits(self) -> int:
        return self.key[0]

    @property
    def requests(self) -> List[MulRequest]:
        return [p.request for p in self.pending]

    @property
    def occupancy(self) -> int:
        return len(self.pending)

    @property
    def request_ids(self) -> Tuple[int, ...]:
        """Ids of the requests in this batch, in release order.

        Lets telemetry spans and degrade-ladder escalations name the
        exact client requests a batch carried."""
        return tuple(p.request.request_id for p in self.pending)


@dataclass
class _Bin:
    key: BinKey
    created_tick: int
    pending: List[Pending] = field(default_factory=list)


class BinningScheduler:
    """Groups requests into same-shape bins and releases full batches.

    Parameters
    ----------
    batch_size:
        Target SIMD occupancy; a bin flushes as soon as it reaches it.
    max_pending:
        Bound on the total queued requests across all bins
        (admission control / backpressure).
    max_wait_ticks:
        A bin older than this many logical ticks flushes even while
        under-full, bounding queueing latency for rare widths.
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_pending: int = 1024,
        max_wait_ticks: int = 64,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if max_pending < batch_size:
            raise ValueError("max_pending must be at least one batch")
        if max_wait_ticks < 1:
            raise ValueError("max_wait_ticks must be at least 1")
        self.batch_size = batch_size
        self.max_pending = max_pending
        self.max_wait_ticks = max_wait_ticks
        self.tick = 0
        self._bins: Dict[BinKey, _Bin] = {}
        self._sequence = 0
        self._pending_total = 0

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return self._pending_total

    def queue_depths(self) -> Dict[BinKey, int]:
        """Pending requests per bin (only non-empty bins appear)."""
        return {key: len(b.pending) for key, b in self._bins.items() if b.pending}

    # ------------------------------------------------------------------
    def submit(
        self,
        request: MulRequest,
        depth: int = 2,
        tick: Optional[int] = None,
        max_residence_ticks: Optional[int] = None,
    ) -> List[Flush]:
        """Queue *request* and return any flushes it triggered.

        Without an explicit *tick* each submission advances the logical
        clock by one — so a caller that only ever submits still gets
        timeout flushes without a separate pump loop.  Callers driving
        a virtual timeline (the async front-end) pass the absolute
        *tick* the request arrived at instead; the clock never moves
        backwards.

        *max_residence_ticks* bounds how long this request may sit in
        its bin (deadline-aware admission): the bin's flush deadline is
        tightened to ``now + max_residence_ticks`` when that is sooner
        than the regular ``max_wait_ticks`` age-out.
        """
        if self._pending_total >= self.max_pending:
            raise QueueFullError(
                f"scheduler queue full ({self.max_pending} pending); "
                "drain or widen max_pending"
            )
        if tick is None:
            self.tick += 1
        else:
            self.tick = max(self.tick, tick)
        key: BinKey = (request.n_bits, depth)
        bin_ = self._bins.get(key)
        if bin_ is None or not bin_.pending:
            bin_ = self._bins[key] = _Bin(key=key, created_tick=self.tick)
        self._sequence += 1
        flush_by = (
            None
            if max_residence_ticks is None
            else self.tick + max(0, max_residence_ticks)
        )
        bin_.pending.append(
            Pending(
                request=request,
                enqueue_tick=self.tick,
                sequence=self._sequence,
                flush_by_tick=flush_by,
            )
        )
        self._pending_total += 1
        return self._collect_ready()

    def pump(self, ticks: int = 1) -> List[Flush]:
        """Advance *ticks* ticks without submitting (idle-time age-out).

        This is how an idle service flushes aged bins: the logical
        clock otherwise only moves on submissions, so stragglers in
        under-full bins would wait forever for new arrivals.
        """
        if ticks < 1:
            raise ValueError("pump must advance at least one tick")
        self.tick += ticks
        return self._collect_ready()

    def advance_to(self, tick: int) -> List[Flush]:
        """Advance the clock to absolute *tick* (no-op when behind).

        The virtual-time entry point: the front-end maps a cycle
        timestamp to a tick and calls this before each arrival (and
        once after the last one) so aged bins flush on schedule even
        while no new requests land in them.  The clock steps through
        each intermediate flush deadline, so a large jump releases
        every straggler *at its own due tick* (``Flush.tick``), not
        bunched at the target — open-loop latency accounting depends
        on those timestamps.
        """
        flushes: List[Flush] = []
        while self.tick < tick:
            due = [
                self._flush_by(bin_)[0]
                for bin_ in self._bins.values()
                if bin_.pending
            ]
            next_due = min((d for d in due if d > self.tick), default=None)
            if next_due is None or next_due >= tick:
                break
            self.tick = next_due
            flushes.extend(self._collect_ready())
        if tick > self.tick:
            self.tick = tick
            flushes.extend(self._collect_ready())
        return flushes

    def drain(self) -> List[Flush]:
        """Flush every pending request regardless of age or occupancy."""
        flushes: List[Flush] = []
        for bin_ in list(self._bins.values()):
            while bin_.pending:
                flushes.append(self._flush_bin(bin_, "drain"))
        return flushes

    # ------------------------------------------------------------------
    def _flush_by(self, bin_: _Bin) -> Tuple[int, str]:
        """Absolute tick at which *bin_* must flush, and why.

        The regular age-out fires ``max_wait_ticks`` after the bin was
        (re)created; a deadline-constrained request may pull the flush
        earlier (reason ``"deadline"``).
        """
        age_out = bin_.created_tick + self.max_wait_ticks
        tightest = min(
            (
                p.flush_by_tick
                for p in bin_.pending
                if p.flush_by_tick is not None
            ),
            default=age_out,
        )
        if tightest < age_out:
            return tightest, "deadline"
        return age_out, "timeout"

    def _collect_ready(self) -> List[Flush]:
        flushes: List[Flush] = []
        for bin_ in list(self._bins.values()):
            while len(bin_.pending) >= self.batch_size:
                flushes.append(self._flush_bin(bin_, "full"))
            while bin_.pending:
                flush_by, reason = self._flush_by(bin_)
                if self.tick < flush_by:
                    break
                flushes.append(self._flush_bin(bin_, reason))
        return flushes

    def _flush_bin(self, bin_: _Bin, reason: str) -> Flush:
        ordered = sorted(
            bin_.pending, key=lambda p: (-p.request.priority, p.sequence)
        )
        released, kept = ordered[: self.batch_size], ordered[self.batch_size :]
        bin_.pending = sorted(kept, key=lambda p: p.sequence)
        if bin_.pending:
            # The leftover tail starts a fresh age window.
            bin_.created_tick = self.tick
        self._pending_total -= len(released)
        return Flush(
            key=bin_.key, pending=tuple(released), reason=reason, tick=self.tick
        )
