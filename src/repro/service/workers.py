"""Bank-of-banks dispatch layer.

One :class:`Way` is one physical multiplier bank way — a
:class:`~repro.karatsuba.pipeline.KaratsubaPipeline` plus the service's
view of it (accumulated busy cycles, health, wear).  A
:class:`BankDispatcher` owns a pool of ways per operand width, creates
them lazily through the warm-pipeline
:class:`~repro.service.cache.ProgramCache`, and issues each flushed
batch to the least-loaded healthy way (with an optional wear-aware
ranking supplied by :mod:`repro.service.degrade`).

Timing is aggregated from the existing
:class:`~repro.karatsuba.pipeline.PipelineTiming` model: each dispatch
adds the batch's pipelined makespan to the chosen way's busy time, and
the service-level makespan is the busiest way's total — the classic
list-scheduling bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.karatsuba.pipeline import KaratsubaPipeline, PipelineTiming
from repro.portfolio.design import DesignPoint, build_pipeline
from repro.service.cache import ProgramCache
from repro.service.requests import NoHealthyWayError
from repro.telemetry import spans as _telemetry


class Way:
    """One bank way: a pipeline plus service-side bookkeeping."""

    def __init__(self, way_id: str, pipeline: KaratsubaPipeline):
        self.way_id = way_id
        self.pipeline = pipeline
        self.busy_cc = 0
        self.jobs_done = 0
        self.batches_done = 0
        self.healthy = True
        #: Autoscaler gate: an inactive way takes no new batches but
        #: stays warm (its compiled pipeline survives) for reactivation.
        self.active = True
        #: Virtual-timeline occupancy: the cycle at which this way next
        #: becomes free (open-loop drivers advance it per dispatch).
        self.free_at_cc = 0
        #: Why the way left service ("" while healthy).
        self.retired_reason = ""

    @property
    def n_bits(self) -> int:
        return self.pipeline.n_bits

    def max_writes(self) -> int:
        """Hottest-cell write count across the way's subarrays."""
        return self.pipeline.controller.max_writes()

    def retire(self, reason: str) -> None:
        self.healthy = False
        self.retired_reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "healthy" if self.healthy else f"retired({self.retired_reason})"
        return f"Way({self.way_id}, {state}, busy={self.busy_cc}cc)"


@dataclass(frozen=True)
class DispatchReport:
    """Outcome of running one flushed batch on one way."""

    way_id: str
    n_bits: int
    products: List[int]
    makespan_cc: int
    timing: PipelineTiming
    #: Ids of the client requests the batch carried (empty when the
    #: caller dispatched raw pairs without request context).
    request_ids: Tuple[int, ...] = ()


#: Ranking hook: maps candidate ways to a sort key (lower runs first).
WayRanker = Callable[[Way], Tuple]


def least_loaded(way: Way) -> Tuple:
    """Default ranking: least queued work, then stable by id."""
    return (way.busy_cc, way.way_id)


class BankDispatcher:
    """Routes flushed batches onto per-width pools of bank ways.

    Parameters
    ----------
    ways_per_width:
        Pool size for each distinct operand width (lazily built).
    program_cache:
        Warm-pipeline cache; pool construction for a width that was
        seen before (even by a retired pool) hits this cache instead of
        re-synthesising stage programs.
    wear_leveling:
        Forwarded to each pipeline (the paper's Sec. IV-B policy).
    spare_rows:
        Spare word lines per crossbar stage, forwarded to each
        pipeline; the degrade controller remaps defective rows onto
        them instead of quarantining the whole way.
    ranker:
        Way-selection key; :func:`least_loaded` unless a wear-aware
        policy (:mod:`repro.service.degrade`) overrides it.
    optimize:
        Run stage adder programs through the SIMD cycle packer
        (:mod:`repro.magic.passes`) in every way's pipeline.  Part of
        the cache variant key, so optimized and paper-exact pipelines
        never alias.
    backend:
        Batched executor backend (:mod:`repro.magic.backend` name) each
        way's pipeline runs on.  Also part of the cache variant key —
        a warm pipeline carries its backend choice, so two configs with
        different backends must never share one.
    design_resolver:
        Optional portfolio hook mapping an operand width to the
        :class:`~repro.portfolio.design.DesignPoint` that should serve
        it (typically ``TuningTable.resolve``).  When set, pools are
        built through :func:`repro.portfolio.design.build_pipeline` and
        the resolved design overrides ``optimize``/``backend``; when
        ``None`` the dispatcher serves the paper's fixed Karatsuba
        L = 2 design for every width.
    """

    def __init__(
        self,
        ways_per_width: int = 2,
        program_cache: Optional[ProgramCache] = None,
        wear_leveling: bool = True,
        spare_rows: int = 2,
        ranker: WayRanker = least_loaded,
        optimize: bool = False,
        backend: str = "bitplane",
        design_resolver: Optional[Callable[[int], DesignPoint]] = None,
    ):
        if ways_per_width < 1:
            raise ValueError("need at least one way per width")
        if spare_rows < 0:
            raise ValueError("spare_rows must be non-negative")
        self.ways_per_width = ways_per_width
        self.program_cache = (
            program_cache if program_cache is not None else ProgramCache()
        )
        self.wear_leveling = wear_leveling
        self.spare_rows = spare_rows
        self.ranker = ranker
        self.optimize = optimize
        self.backend = backend
        self.design_resolver = design_resolver
        self._pools: Dict[int, List[Way]] = {}

    # ------------------------------------------------------------------
    def pool(self, n_bits: int) -> List[Way]:
        """The (lazily created) way pool for *n_bits*."""
        ways = self._pools.get(n_bits)
        if ways is None:
            ways = [
                Way(
                    way_id=f"w{n_bits}.{index}",
                    pipeline=self._build_pipeline(n_bits, index),
                )
                for index in range(self.ways_per_width)
            ]
            self._pools[n_bits] = ways
        return ways

    def design_for(self, n_bits: int) -> DesignPoint:
        """The design point serving *n_bits* under the current policy."""
        if self.design_resolver is not None:
            return self.design_resolver(n_bits)
        return DesignPoint(
            "karatsuba",
            depth=2,
            optimize=self.optimize,
            backend=self.backend,
        )

    def _variant(self, n_bits: int, index) -> str:
        """Cache variant key of one way's pipeline.

        Embeds the full design-point key — algorithm, unroll depth,
        optimizer flag and executor backend — so two design points at
        the same width can never alias one warm pipeline (a Toom-3 way
        and a Karatsuba way are different hardware).
        """
        return f"pipeline.{index}.{self.design_for(n_bits).key()}"

    def _build_pipeline(self, n_bits: int, index: int) -> KaratsubaPipeline:
        design = self.design_for(n_bits)
        return self.program_cache.get_or_build(
            n_bits,
            lambda: build_pipeline(
                n_bits,
                design,
                wear_leveling=self.wear_leveling,
                spare_rows=self.spare_rows,
            ),
            variant=self._variant(n_bits, index),
        )

    def healthy_ways(self, n_bits: int) -> List[Way]:
        """Ways eligible for new work: healthy *and* autoscaler-active."""
        return [
            way for way in self.pool(n_bits) if way.healthy and way.active
        ]

    def active_count(self, n_bits: int) -> int:
        return len(self.healthy_ways(n_bits))

    def set_active_ways(self, n_bits: int, count: int) -> int:
        """Resize the active portion of a width's pool to *count* ways.

        Scale-up first reactivates warm (deactivated) ways, then builds
        brand-new ones past the original ``ways_per_width``; scale-down
        deactivates the highest-indexed active ways but keeps them warm
        for the next burst.  Retired ways are never revived.  Returns
        the resulting active count.
        """
        if count < 1:
            raise ValueError("at least one way must stay active")
        pool = self.pool(n_bits)
        healthy = [way for way in pool if way.healthy]
        while len(healthy) < count:
            index = len(pool)
            way = Way(
                way_id=f"w{n_bits}.{index}",
                pipeline=self._build_pipeline(n_bits, index),
            )
            pool.append(way)
            healthy.append(way)
        for position, way in enumerate(healthy):
            way.active = position < count
        return self.active_count(n_bits)

    def way_by_id(self, way_id: str) -> Optional[Way]:
        for way in self.all_ways():
            if way.way_id == way_id:
                return way
        return None

    def quarantine(self, way: Way, reason: str) -> None:
        """Retire *way* and evict its warm pipeline from the cache.

        A quarantined way's arrays may hold corrupted state (stuck-at
        cells, exhausted endurance), so a future pool for this width
        must rebuild rather than revive it.
        """
        way.retire(reason)
        index = way.way_id.rsplit(".", 1)[-1]
        self.program_cache.discard(
            way.n_bits, variant=self._variant(way.n_bits, index)
        )

    def widths(self) -> List[int]:
        return sorted(self._pools)

    def all_ways(self) -> List[Way]:
        return [way for width in self.widths() for way in self._pools[width]]

    # ------------------------------------------------------------------
    def select_way(
        self, n_bits: int, exclude: Optional[Set[str]] = None
    ) -> Way:
        """Best healthy way for *n_bits* under the current ranking."""
        exclude = exclude or set()
        candidates = [
            way for way in self.healthy_ways(n_bits)
            if way.way_id not in exclude
        ]
        if not candidates:
            # Autoscaled-down ways are a capacity policy, not a health
            # one: fall back to any warm healthy way before declaring
            # the width unservable (fault retries may have excluded
            # every active way).
            candidates = [
                way for way in self.pool(n_bits)
                if way.healthy and way.way_id not in exclude
            ]
        if not candidates:
            raise NoHealthyWayError(
                f"no healthy way left for n={n_bits} "
                f"(excluded: {sorted(exclude) or 'none'})"
            )
        return min(candidates, key=self.ranker)

    def dispatch(
        self,
        n_bits: int,
        pairs: Sequence[Tuple[int, int]],
        exclude: Optional[Set[str]] = None,
        request_ids: Sequence[int] = (),
    ) -> DispatchReport:
        """Run *pairs* as one SIMD batch on the best available way.

        The whole batch executes on a single way — lanes of one
        bit-plane pass share that way's subarrays — and the way's busy
        time grows by the batch's pipelined makespan.
        """
        way = self.select_way(n_bits, exclude)
        return self.run_on(way, pairs, request_ids=request_ids)

    def run_on(
        self,
        way: Way,
        pairs: Sequence[Tuple[int, int]],
        request_ids: Sequence[int] = (),
    ) -> DispatchReport:
        """Run *pairs* on a specific way (retry path uses this).

        When tracing is enabled the dispatch emits one span per batch
        on the way's track, timed in *service time* — the way's
        accumulated busy window ``[busy_cc, busy_cc + makespan_cc]`` —
        and tagged with the request ids it carried.
        """
        pairs = list(pairs)
        tracer = _telemetry.active()
        if tracer is None:
            result = way.pipeline.run_stream(
                pairs, batch_size=max(len(pairs), 1)
            )
        else:
            with tracer.span(
                "dispatch",
                begin_cc=way.busy_cc,
                track=way.way_id,
                way=way.way_id,
                n_bits=way.n_bits,
                jobs=len(pairs),
                request_ids=list(request_ids),
            ) as span:
                result = way.pipeline.run_stream(
                    pairs, batch_size=max(len(pairs), 1)
                )
                span.set(makespan_cc=result.makespan_cc)
                span.finish(way.busy_cc + result.makespan_cc)
        way.busy_cc += result.makespan_cc
        way.jobs_done += len(pairs)
        way.batches_done += 1
        return DispatchReport(
            way_id=way.way_id,
            n_bits=way.n_bits,
            products=result.products,
            makespan_cc=result.makespan_cc,
            timing=result.timing,
            request_ids=tuple(request_ids),
        )

    # ------------------------------------------------------------------
    def makespan_cc(self) -> int:
        """Service makespan: the busiest way bounds completion."""
        return max((way.busy_cc for way in self.all_ways()), default=0)

    def throughput_per_mcc(self, jobs: int) -> float:
        """Achieved multiplications per Mcc over the busiest way's span."""
        makespan = self.makespan_cc()
        if makespan == 0:
            return 0.0
        return jobs * 1e6 / makespan

    def utilisation(self) -> Dict[str, float]:
        """Busy fraction per way against the busiest way."""
        makespan = self.makespan_cc()
        if makespan == 0:
            return {way.way_id: 0.0 for way in self.all_ways()}
        return {
            way.way_id: way.busy_cc / makespan for way in self.all_ways()
        }
