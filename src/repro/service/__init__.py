"""`repro.service` — the batching multiplication service layer.

Turns the cycle-accurate simulator into a servable system.  Clients
submit individual multiplications; the service validates and queues
them (:mod:`~repro.service.scheduler`), groups same-shape requests
into SIMD bit-plane batches, answers repeats from an operand cache
(:mod:`~repro.service.cache`), dispatches flushed batches onto the
least-loaded / least-worn bank way (:mod:`~repro.service.workers`,
:mod:`~repro.service.degrade`), recovers from in-band fault
detections through the remap → replay → quarantine escalation ladder
(with the pure-Python oracle available as an opt-in audit), and
exposes counters and histograms (:mod:`~repro.service.metrics`).

>>> from repro.service import MultiplicationService, ServiceConfig
>>> svc = MultiplicationService(ServiceConfig(batch_size=4, ways_per_width=2))
>>> ids = [svc.submit(a, a + 1, 64) for a in range(8)]
>>> results = svc.drain()
>>> [r.product for r in results] == [a * (a + 1) for a in range(8)]
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crossbar.array import FAULT_STUCK_AT_1
from repro.crossbar.faults import StuckAtFault, inject
from repro.karatsuba import cost
from repro.karatsuba.pipeline import DEFAULT_BATCH_SIZE
from repro.portfolio.tuner import TuningTable
from repro.service.autoscale import AutoscalerConfig, ScaleEvent, WayAutoscaler
from repro.service.cache import OperandCache, ProgramCache
from repro.service.degrade import (
    DEFAULT_WRITE_BUDGET,
    DegradeController,
    EndurancePolicy,
    RecoveryReport,
)
from repro.service.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.service.requests import (
    AdmissionError,
    DeadlineImpossibleError,
    MulRequest,
    MulResult,
    NoHealthyWayError,
    QueueFullError,
    ServiceError,
)
from repro.service.scheduler import BinningScheduler, Flush
from repro.service.workers import BankDispatcher, DispatchReport, Way
from repro.telemetry.registry import TelemetryRegistry

__all__ = [
    "AdmissionError",
    "AutoscalerConfig",
    "BankDispatcher",
    "BinningScheduler",
    "DeadlineImpossibleError",
    "DegradeController",
    "DispatchReport",
    "EndurancePolicy",
    "Flush",
    "MetricsRegistry",
    "MulRequest",
    "MulResult",
    "MultiplicationService",
    "NoHealthyWayError",
    "OperandCache",
    "ProgramCache",
    "QueueFullError",
    "RecoveryReport",
    "ScaleEvent",
    "ServiceConfig",
    "ServiceError",
    "TelemetryRegistry",
    "Way",
    "WayAutoscaler",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of one :class:`MultiplicationService` instance."""

    #: Target SIMD occupancy per flushed batch.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Admission-control bound on queued requests (backpressure).
    max_pending: int = 1024
    #: Under-full bins flush after this many logical ticks.
    max_wait_ticks: int = 64
    #: Bank ways instantiated per distinct operand width.
    ways_per_width: int = 2
    #: Entries in the repeated-operand product memo.
    operand_cache_size: int = 4096
    #: Entries in the warm-pipeline (compiled program) cache.
    program_cache_size: int = 16
    #: Per-cell write budget before a way retires (endurance).
    write_budget: int = DEFAULT_WRITE_BUDGET
    #: Batch replays allowed while recovering from faulty ways.
    max_retries: int = 3
    #: Forwarded to every pipeline (paper Sec. IV-B region swap).
    wear_leveling: bool = True
    #: Spare word lines per crossbar stage (detection-driven remap).
    spare_rows: int = 2
    #: Same-way replays allowed after an in-place repair.
    max_inplace_replays: int = 2
    #: Audit every product against the pure-Python oracle ``a * b``.
    #: Off by default: production detection is the in-band residue and
    #: differential self-checks of the Karatsuba stages.
    oracle_audit: bool = False
    #: Run stage adder programs through the SIMD cycle packer
    #: (:mod:`repro.magic.passes`) in every bank way.  On by default —
    #: the service is the deployment surface, so it takes the packed
    #: schedules; set ``False`` for the paper's closed-form latencies.
    optimize: bool = True
    #: Batched executor backend every bank-way pipeline runs on (one of
    #: :data:`repro.magic.BACKEND_NAMES`).  The service defaults to the
    #: word-packed fast path; per-lane products, cycle counts, write
    #: counters and energy are bit-identical across backends, so the
    #: choice only moves simulation wall-clock.
    backend: str = "word"
    #: Clock cycles per scheduler logical tick on the virtual timeline.
    #: Open-loop drivers stamp requests with ``arrival_cc``; the
    #: service maps those cycles to ticks at this granularity, so
    #: ``max_wait_ticks`` bounds bin residence at
    #: ``max_wait_ticks * tick_cc`` cycles.
    tick_cc: int = 256
    #: Reject requests whose ``deadline_cc`` is below the width's
    #: single-batch execution estimate (distinct
    #: :class:`DeadlineImpossibleError`), and tighten a bin's flush
    #: deadline so feasible deadlines are not eaten by bin residence.
    strict_deadlines: bool = True
    #: Queue-depth-driven way autoscaling (``None`` = fixed pools).
    autoscale: Optional[AutoscalerConfig] = None
    #: Route every width to its tuned design point (algorithm, unroll
    #: depth, optimizer flag, backend) instead of the paper's fixed
    #: Karatsuba L = 2.  Admission also relaxes to the portfolio floor
    #: (off-grid widths become servable through Toom-3 / schoolbook).
    portfolio: bool = False
    #: Routing table for portfolio mode: a path to a saved
    #: ``TUNE_portfolio.json`` (:meth:`repro.portfolio.TuningTable.save`)
    #: or an in-memory :class:`~repro.portfolio.TuningTable` (benches
    #: and tests sweep and inject directly).  ``None`` with
    #: ``portfolio=True`` uses a measurement-free table that routes
    #: every width through the closed-form cost prior.
    portfolio_table: Optional[object] = None


class MultiplicationService:
    """Facade wiring scheduler, caches, dispatch, degrade and metrics.

    Submission is synchronous-but-batched: :meth:`submit` enqueues (or
    answers from cache) and opportunistically executes any batch the
    submission made ready; :meth:`drain` force-flushes the rest and
    returns every result accumulated since the previous drain, in
    request order.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        #: Unified observability sink: metrics instruments plus span
        #: emission.  ``self.metrics`` stays the same MetricsRegistry
        #: object it always was (snapshot schema unchanged).
        self.telemetry = TelemetryRegistry()
        self.metrics = self.telemetry.metrics
        self.scheduler = BinningScheduler(
            batch_size=self.config.batch_size,
            max_pending=self.config.max_pending,
            max_wait_ticks=self.config.max_wait_ticks,
        )
        self.program_cache = ProgramCache(self.config.program_cache_size)
        self.operand_cache = OperandCache(self.config.operand_cache_size)
        #: Per-width design routing (portfolio mode only).  A saved
        #: tuning table resolves measured buckets exactly and falls
        #: back to the closed-form prior for unmeasured widths; with no
        #: table configured, every width goes through the prior.
        self.tuning_table: Optional[TuningTable] = None
        if self.config.portfolio:
            source = self.config.portfolio_table
            if isinstance(source, TuningTable):
                self.tuning_table = source
            elif source is not None:
                self.tuning_table = TuningTable.load(source)
            else:
                self.tuning_table = TuningTable(
                    config={
                        "optimize": self.config.optimize,
                        "backend": self.config.backend,
                    }
                )
        self.dispatcher = BankDispatcher(
            ways_per_width=self.config.ways_per_width,
            program_cache=self.program_cache,
            wear_leveling=self.config.wear_leveling,
            spare_rows=self.config.spare_rows,
            optimize=self.config.optimize,
            backend=self.config.backend,
            design_resolver=(
                self.tuning_table.resolve
                if self.tuning_table is not None
                else None
            ),
        )
        self.degrade = DegradeController(
            self.dispatcher,
            policy=EndurancePolicy(self.config.write_budget),
            max_retries=self.config.max_retries,
            max_inplace_replays=self.config.max_inplace_replays,
            oracle_audit=self.config.oracle_audit,
        )
        self.autoscaler: Optional[WayAutoscaler] = (
            WayAutoscaler(self.dispatcher, self.config.autoscale)
            if self.config.autoscale is not None
            else None
        )
        self._next_request_id = 0
        self._batch_counter = 0
        self._completed: List[MulResult] = []
        self._jobs_completed = 0
        #: Virtual now on the cycle timeline (open-loop drivers advance
        #: it; stays 0 under the legacy tick-per-submission clock).
        self._now_cc = 0
        #: Per-width completion instants of dispatched-but-unfinished
        #: jobs on the virtual timeline — the way-backlog half of the
        #: autoscaler's depth signal (bins alone cap at batch_size).
        self._inflight_cc: Dict[int, List[int]] = {}
        #: Cycles-saved already folded into the ``optimizer_cycles_saved``
        #: counter (stage programs build lazily, so savings only grow).
        self._optimizer_saved_reported = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        a: int,
        b: int,
        n_bits: int,
        priority: int = 0,
        deadline_cc: Optional[int] = None,
        arrival_cc: Optional[int] = None,
        kind: str = "mul",
        modulus_bits: Optional[int] = None,
    ) -> int:
        """Submit one multiplication; returns its request id.

        Raises :class:`AdmissionError` on invalid operands/width,
        :class:`QueueFullError` under backpressure, and
        :class:`DeadlineImpossibleError` for a deadline below the
        width's execution estimate (the request is not enqueued in any
        of these cases).
        """
        request = MulRequest(
            request_id=self._next_request_id,
            a=a,
            b=b,
            n_bits=n_bits,
            priority=priority,
            deadline_cc=deadline_cc,
            arrival_cc=arrival_cc,
            kind=kind,
            modulus_bits=modulus_bits,
            # Portfolio routing serves widths the fixed datapath cannot
            # (Toom-3 / schoolbook have no multiple-of-4 constraint).
            flexible_width=self.config.portfolio,
        )
        self.submit_request(request)
        return request.request_id

    # ------------------------------------------------------------------
    # Deadline admission
    # ------------------------------------------------------------------
    def min_latency_estimate_cc(self, n_bits: int) -> int:
        """Conservative one-batch execution estimate for a width.

        The paper's closed-form pipeline latency (``optimize=False``);
        the cycle packer only ever lowers it, so a deadline below this
        bound cannot be met even by an immediate flush.  Under
        portfolio routing the Karatsuba closed form is no longer a
        lower bound (schoolbook beats it at small widths), so the
        estimate comes from the tuning table's routed-design floor.
        """
        if self.tuning_table is not None:
            return self.tuning_table.latency_floor_cc(n_bits)
        return cost.design_cost(n_bits, 2).latency_cc

    def _deadline_residence_ticks(self, request: MulRequest) -> Optional[int]:
        """Bin-residence bound (ticks) that keeps *request*'s deadline
        feasible, or ``None`` when the deadline imposes no constraint.

        Raises :class:`DeadlineImpossibleError` when even an immediate
        flush cannot meet the deadline — the distinct admission error
        clients can react to (vs. silently missing later).
        """
        if not self.config.strict_deadlines or request.deadline_cc is None:
            return None
        estimate = self.min_latency_estimate_cc(request.n_bits)
        slack_cc = request.deadline_cc - estimate
        if slack_cc < 0:
            self.metrics.counter("requests_rejected_deadline").inc()
            raise DeadlineImpossibleError(
                f"deadline {request.deadline_cc} cc is below the "
                f"n={request.n_bits} execution estimate {estimate} cc"
            )
        residence = slack_cc // self.config.tick_cc
        if residence >= self.scheduler.max_wait_ticks:
            return None  # the regular age-out is already tight enough
        return residence

    def submit_request(self, request: MulRequest) -> None:
        """Submit a pre-built :class:`MulRequest` (id chosen by caller)."""
        self._next_request_id = max(self._next_request_id, request.request_id) + 1
        if request.arrival_cc is not None:
            # Virtual-time arrivals first advance the clock so bins
            # that aged out before this arrival flush ahead of it.
            self.advance_to_cc(request.arrival_cc)
        with self.telemetry.span(
            "service.admit",
            request_id=request.request_id,
            n_bits=request.n_bits,
        ) as span:
            cached = self.operand_cache.lookup(
                request.a, request.b, request.n_bits
            )
            self.metrics.counter(f"requests_kind_{request.kind}").inc()
            if cached is not None:
                span.set(cache_hit=True)
                self.metrics.counter("requests_submitted").inc()
                self.metrics.counter("operand_cache_hits").inc()
                self._completed.append(
                    MulResult(
                        request_id=request.request_id,
                        product=cached,
                        n_bits=request.n_bits,
                        way="cache",
                        batch_id=-1,
                        batch_occupancy=1,
                        latency_cc=0,
                        cache_hit=True,
                        deadline_met=(
                            None if request.deadline_cc is None else True
                        ),
                        arrival_cc=request.arrival_cc,
                        completion_cc=request.arrival_cc,
                        kind=request.kind,
                        modulus_bits=request.modulus_bits,
                    )
                )
                return
            span.set(cache_hit=False)
            self.metrics.counter("operand_cache_misses").inc()
            residence = self._deadline_residence_ticks(request)
            tick = (
                None
                if request.arrival_cc is None
                else request.arrival_cc // self.config.tick_cc
            )
            try:
                flushes = self.scheduler.submit(
                    request, tick=tick, max_residence_ticks=residence
                )
            except QueueFullError:
                self.metrics.counter("requests_rejected").inc()
                self.metrics.counter(
                    f"requests_rejected_priority_{request.priority}"
                ).inc()
                raise
            self.metrics.counter("requests_submitted").inc()
            self.metrics.histogram("queue_depth", COUNT_BUCKETS).observe(
                self.scheduler.pending_count
            )
        self._autoscale()
        self._execute_flushes(flushes)

    def pump(self, ticks: int = 1) -> None:
        """Advance logical time *ticks* ticks (age-out under-full bins).

        This is the idle-time clock: submissions advance the scheduler
        tick as arrivals, but a service with no new arrivals needs
        pumping so stragglers in under-full bins still flush once they
        age past ``max_wait_ticks``.
        """
        flushes = self.scheduler.pump(ticks)
        self._autoscale()
        self._execute_flushes(flushes)

    def advance_to_cc(self, now_cc: int) -> None:
        """Advance the virtual cycle clock to *now_cc* (monotonic).

        Ages bins at ``tick_cc`` granularity and flushes any that hit
        their age-out or deadline-tightened flush tick — the open-loop
        driver calls this between arrivals and after the last one, so
        an idle tail still completes without extra submissions.
        """
        if now_cc > self._now_cc:
            self._now_cc = now_cc
        flushes = self.scheduler.advance_to(now_cc // self.config.tick_cc)
        self._autoscale()
        self._execute_flushes(flushes)

    def take_completed(self) -> List[MulResult]:
        """Return (and clear) results completed so far, in request order.

        Unlike :meth:`drain` this forces nothing: under-full bins keep
        waiting.  The sharded front-end workers use it to stream
        results back as they happen.
        """
        completed = sorted(self._completed, key=lambda r: r.request_id)
        self._completed = []
        return completed

    def drain(self) -> List[MulResult]:
        """Flush everything pending and return results in request order.

        Returns every result accumulated since the last drain (cache
        hits included) and clears the internal completion buffer.
        """
        self._execute_flushes(self.scheduler.drain())
        return self.take_completed()

    def _autoscale(self) -> None:
        """One autoscaler observation at the current scheduler tick."""
        if self.autoscaler is None:
            return
        depths: Dict[int, int] = {}
        for (n_bits, _depth), count in self.scheduler.queue_depths().items():
            depths[n_bits] = depths.get(n_bits, 0) + count
        # Fold in virtual in-flight backlog: jobs dispatched to ways
        # whose completion lies past "now" are still queued work from
        # the client's perspective (bin depth alone caps at batch_size
        # because full bins flush immediately).
        for n_bits, completions in self._inflight_cc.items():
            live = [cc for cc in completions if cc > self._now_cc]
            self._inflight_cc[n_bits] = live
            if live:
                depths[n_bits] = depths.get(n_bits, 0) + len(live)
        for event in self.autoscaler.observe(self.scheduler.tick, depths):
            self.metrics.counter(f"autoscale_{event.direction}_total").inc()
            self.telemetry.event(
                f"autoscale.{event.direction}",
                n_bits=event.n_bits,
                active_ways=event.active_ways,
                tick=event.tick,
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_flushes(self, flushes: List[Flush]) -> None:
        for flush in flushes:
            self._execute_flush(flush)

    def _execute_flush(self, flush: Flush) -> None:
        pairs = [(p.request.a, p.request.b) for p in flush.pending]
        batch_id = self._batch_counter
        self._batch_counter += 1
        with self.telemetry.span(
            "service.batch",
            batch_id=batch_id,
            n_bits=flush.n_bits,
            reason=flush.reason,
            occupancy=flush.occupancy,
            request_ids=list(flush.request_ids),
        ) as span:
            recovery = self.degrade.execute(
                flush.n_bits, pairs, request_ids=flush.request_ids
            )
            report = recovery.report
            span.set(
                way=report.way_id,
                makespan_cc=report.makespan_cc,
                retries=recovery.retries,
            )
        self._jobs_completed += len(pairs)

        # Virtual-timeline occupancy: the batch starts when the flush
        # happened (its due tick, but never before its last member
        # arrived) and its way is free, and completes one makespan
        # later.  Under the legacy clock (_now_cc stays 0) this
        # degrades to per-way cumulative busy time.
        arrivals = [
            p.request.arrival_cc
            for p in flush.pending
            if p.request.arrival_cc is not None
        ]
        if arrivals:
            flush_at_cc = max(flush.tick * self.config.tick_cc, max(arrivals))
        else:
            flush_at_cc = self._now_cc
        way = self.dispatcher.way_by_id(report.way_id)
        start_cc = flush_at_cc
        if way is not None:
            start_cc = max(start_cc, way.free_at_cc)
        completion_cc = start_cc + report.makespan_cc
        if way is not None:
            way.free_at_cc = completion_cc
        if arrivals and self.autoscaler is not None:
            self._inflight_cc.setdefault(flush.n_bits, []).extend(
                [completion_cc] * len(flush.pending)
            )

        self.metrics.counter("batches_flushed").inc()
        self.metrics.counter(f"flush_reason_{flush.reason}").inc()
        self.metrics.counter("faults_detected").inc(recovery.detections)
        self.metrics.counter("rows_remapped").inc(len(recovery.remapped_rows))
        self.metrics.counter("inplace_replays").inc(recovery.inplace_replays)
        self.metrics.counter("fault_retries").inc(recovery.retries)
        self.metrics.counter("ways_retired").inc(
            len(recovery.faulty_ways) + len(recovery.retired_ways)
        )
        self.metrics.histogram("batch_occupancy", COUNT_BUCKETS).observe(
            flush.occupancy
        )
        self.metrics.histogram("batch_latency_cc", LATENCY_BUCKETS).observe(
            report.makespan_cc
        )

        for pending, product in zip(flush.pending, report.products):
            request = pending.request
            self.operand_cache.store(
                request.a, request.b, request.n_bits, product
            )
            if request.arrival_cc is not None:
                # Virtual timeline: the request's latency is queueing
                # wait plus execution, arrival to batch completion.
                observed_cc = completion_cc - request.arrival_cc
                self.metrics.histogram(
                    "service_latency_cc", LATENCY_BUCKETS
                ).observe(observed_cc)
                deadline_met = (
                    None
                    if request.deadline_cc is None
                    else observed_cc <= request.deadline_cc
                )
            else:
                deadline_met = (
                    None
                    if request.deadline_cc is None
                    else report.makespan_cc <= request.deadline_cc
                )
            if deadline_met is not None:
                self.metrics.counter(
                    "deadlines_met" if deadline_met else "deadlines_missed"
                ).inc()
            self._completed.append(
                MulResult(
                    request_id=request.request_id,
                    product=product,
                    n_bits=request.n_bits,
                    way=report.way_id,
                    batch_id=batch_id,
                    batch_occupancy=flush.occupancy,
                    latency_cc=report.makespan_cc,
                    queued_ticks=flush.tick - pending.enqueue_tick,
                    retries=recovery.retries,
                    faulty_ways=recovery.faulty_ways,
                    deadline_met=deadline_met,
                    arrival_cc=request.arrival_cc,
                    completion_cc=(
                        completion_cc
                        if request.arrival_cc is not None
                        else None
                    ),
                    kind=request.kind,
                    modulus_bits=request.modulus_bits,
                )
            )

    # ------------------------------------------------------------------
    # Fault-injection hook (tests, benches, chaos drills)
    # ------------------------------------------------------------------
    def inject_fault(
        self,
        n_bits: int,
        way_index: int = 0,
        stage: str = "precompute",
        row: int = 8,
        col: int = 0,
        kind: str = FAULT_STUCK_AT_1,
    ) -> str:
        """Pin a stuck-at cell in one way's stage subarray.

        Returns the way id so callers can assert on its recovery.  The
        default target (precompute result row 8, column 0) corrupts
        chunk sums: ``sa1`` trips the stage's residue self-check,
        ``sa0`` violates the MAGIC init precondition mid-program — both
        surface as exceptions the degrade controller climbs the
        escalation ladder on (remap the row to a spare and replay in
        place; quarantine only when spares run out).
        """
        way = self.dispatcher.pool(n_bits)[way_index]
        array = getattr(way.pipeline.controller, stage).array
        inject(array, [StuckAtFault(row=row, col=col, kind=kind)])
        return way.way_id

    def arm_fault_hook(self, n_bits: int, hook, way_index: int = 0) -> str:
        """Attach a transient-fault injector to one way's crossbars.

        *hook* follows the executor fault-hook protocol
        (:class:`~repro.crossbar.faults.TransientFaultInjector`);
        pass ``None`` to disarm.  Returns the way id.
        """
        way = self.dispatcher.pool(n_bits)[way_index]
        way.pipeline.controller.fault_hook = hook
        return way.way_id

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _compile_cache_totals(self) -> Dict[str, int]:
        totals = {"hits": 0, "misses": 0, "evictions": 0}
        for way in self.dispatcher.all_ways():
            controller = way.pipeline.controller
            stage_names = getattr(
                controller,
                "stage_attr_names",
                ("precompute", "multiply_stage", "postcompute"),
            )
            for stage_name in stage_names:
                executor = getattr(
                    getattr(controller, stage_name, None), "executor", None
                )
                if executor is None:
                    continue
                for key, value in executor.compile_cache_stats().as_dict().items():
                    totals[key] += value
        return totals

    def _optimizer_snapshot(self) -> Dict[str, object]:
        """Aggregated SIMD cycle-packer stats across every bank way.

        Additive section: ``{"enabled": bool}`` plus, when the packer is
        on, fleet-wide ``cycles_saved`` / ``pack_factor`` / ``by_pass``
        and the per-way breakdown.  Also folds newly observed savings
        into the ``optimizer_cycles_saved`` / ``optimizer_gates_packed``
        telemetry counters (stage programs build lazily, so the totals
        are monotone and the counters see each cycle saved once).
        """
        if not self.config.optimize:
            return {"enabled": False}
        per_way: Dict[str, Dict[str, object]] = {}
        totals = {"cycles_before": 0, "cycles_after": 0, "cycles_saved": 0}
        by_pass: Dict[str, int] = {}
        gates = 0
        for way in self.dispatcher.all_ways():
            stats = way.pipeline.controller.optimizer_stats()
            if not stats.get("enabled"):
                continue
            per_way[way.way_id] = stats
            # Stage keys are per-controller ("precompute"/"postcompute"
            # for Karatsuba, "evaluate"/"interpolate" for Toom-3), so
            # aggregate whatever per-stage dicts the controller reports.
            stage_dicts = [
                value
                for key, value in stats.items()
                if key != "enabled" and isinstance(value, dict)
            ]
            for stage_stats in stage_dicts:
                for key in totals:
                    totals[key] += stage_stats[key]
                # Sum the raw gate counts; reconstructing them from the
                # per-stage ratio (pack_factor * cycles_after) re-weights
                # each stage by its own denominator and drops every
                # stage that reports the cycles_after == 0 convention,
                # so the fleet ratio drifted from summed-gates /
                # summed-pack-cycles whenever stages were uneven.
                gates += stage_stats["gates"]
                for name, saved in stage_stats["by_pass"].items():
                    by_pass[name] = by_pass.get(name, 0) + saved
        after = totals["cycles_after"]
        fresh = totals["cycles_saved"] - self._optimizer_saved_reported
        if fresh > 0:
            self.telemetry.counter("optimizer_cycles_saved").inc(fresh)
            self._optimizer_saved_reported = totals["cycles_saved"]
        return {
            "enabled": True,
            "cycles_before": totals["cycles_before"],
            "cycles_after": after,
            "cycles_saved": totals["cycles_saved"],
            "gates": gates,
            "pack_factor": gates / after if after else 1.0,
            "by_pass": by_pass,
            "ways": per_way,
        }

    def _portfolio_snapshot(self) -> Dict[str, object]:
        """Design-routing state: the table behind the resolver and the
        design key actually serving each instantiated width pool."""
        if self.tuning_table is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "table": {
                "source": (
                    "in-memory"
                    if isinstance(self.config.portfolio_table, TuningTable)
                    else self.config.portfolio_table or "prior-only"
                ),
                "selections": self.tuning_table.selections(),
                **self.tuning_table.stats(),
            },
            "routes": {
                n_bits: self.dispatcher.design_for(n_bits).key()
                for n_bits in self.dispatcher.widths()
            },
        }

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict service state: metrics, caches, ways, endurance.

        Schema (see ``docs/architecture.md`` for field semantics)::

            {
              "counters": {...}, "histograms": {...},   # MetricsRegistry
              "caches": {"operand": .., "program": .., "compile": ..},
              "service": {"jobs_completed", "makespan_cc",
                          "throughput_per_mcc", "pending"},
              "ways": {way_id: utilisation},
              "endurance": {way_id: {...}},
              "reliability": {way_id: {"healthy", "spare_rows_free",
                                       "remap", "residue"}},
              "optimizer": {"enabled", "cycles_saved", "pack_factor",
                            "by_pass", "ways"},      # additive keys
              "autoscaler": {"enabled", "min_ways", "max_ways",
                             "widths": {n: {"active_ways", "scale_ups",
                                            "scale_downs", ...}}},
              "portfolio": {"enabled", "table": {"source", "selections",
                            "buckets", "bucket_hits", "prior_hits"},
                            "routes": {n: design_key}},
            }
        """
        optimizer = self._optimizer_snapshot()
        snapshot = self.metrics.snapshot()
        snapshot["caches"] = {
            "operand": self.operand_cache.stats.as_dict(),
            "program": self.program_cache.stats.as_dict(),
            "compile": self._compile_cache_totals(),
        }
        snapshot["service"] = {
            "jobs_completed": self._jobs_completed,
            "makespan_cc": self.dispatcher.makespan_cc(),
            "throughput_per_mcc": self.dispatcher.throughput_per_mcc(
                self._jobs_completed
            ),
            "pending": self.scheduler.pending_count,
            "now_cc": self._now_cc,
        }
        snapshot["ways"] = self.dispatcher.utilisation()
        snapshot["endurance"] = self.degrade.endurance_snapshot()
        snapshot["reliability"] = self.degrade.reliability_snapshot()
        snapshot["optimizer"] = optimizer
        snapshot["autoscaler"] = (
            self.autoscaler.snapshot()
            if self.autoscaler is not None
            else {"enabled": False}
        )
        snapshot["portfolio"] = self._portfolio_snapshot()
        return snapshot
