"""`repro.service` — the batching multiplication service layer.

Turns the cycle-accurate simulator into a servable system.  Clients
submit individual multiplications; the service validates and queues
them (:mod:`~repro.service.scheduler`), groups same-shape requests
into SIMD bit-plane batches, answers repeats from an operand cache
(:mod:`~repro.service.cache`), dispatches flushed batches onto the
least-loaded / least-worn bank way (:mod:`~repro.service.workers`,
:mod:`~repro.service.degrade`), recovers from in-band fault
detections through the remap → replay → quarantine escalation ladder
(with the pure-Python oracle available as an opt-in audit), and
exposes counters and histograms (:mod:`~repro.service.metrics`).

>>> from repro.service import MultiplicationService, ServiceConfig
>>> svc = MultiplicationService(ServiceConfig(batch_size=4, ways_per_width=2))
>>> ids = [svc.submit(a, a + 1, 64) for a in range(8)]
>>> results = svc.drain()
>>> [r.product for r in results] == [a * (a + 1) for a in range(8)]
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crossbar.array import FAULT_STUCK_AT_1
from repro.crossbar.faults import StuckAtFault, inject
from repro.karatsuba.pipeline import DEFAULT_BATCH_SIZE
from repro.service.cache import OperandCache, ProgramCache
from repro.service.degrade import (
    DEFAULT_WRITE_BUDGET,
    DegradeController,
    EndurancePolicy,
    RecoveryReport,
)
from repro.service.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.service.requests import (
    AdmissionError,
    MulRequest,
    MulResult,
    NoHealthyWayError,
    QueueFullError,
    ServiceError,
)
from repro.service.scheduler import BinningScheduler, Flush
from repro.service.workers import BankDispatcher, DispatchReport, Way
from repro.telemetry.registry import TelemetryRegistry

__all__ = [
    "AdmissionError",
    "BankDispatcher",
    "BinningScheduler",
    "DegradeController",
    "DispatchReport",
    "EndurancePolicy",
    "Flush",
    "MetricsRegistry",
    "MulRequest",
    "MulResult",
    "MultiplicationService",
    "NoHealthyWayError",
    "OperandCache",
    "ProgramCache",
    "QueueFullError",
    "RecoveryReport",
    "ServiceConfig",
    "ServiceError",
    "TelemetryRegistry",
    "Way",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of one :class:`MultiplicationService` instance."""

    #: Target SIMD occupancy per flushed batch.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Admission-control bound on queued requests (backpressure).
    max_pending: int = 1024
    #: Under-full bins flush after this many logical ticks.
    max_wait_ticks: int = 64
    #: Bank ways instantiated per distinct operand width.
    ways_per_width: int = 2
    #: Entries in the repeated-operand product memo.
    operand_cache_size: int = 4096
    #: Entries in the warm-pipeline (compiled program) cache.
    program_cache_size: int = 16
    #: Per-cell write budget before a way retires (endurance).
    write_budget: int = DEFAULT_WRITE_BUDGET
    #: Batch replays allowed while recovering from faulty ways.
    max_retries: int = 3
    #: Forwarded to every pipeline (paper Sec. IV-B region swap).
    wear_leveling: bool = True
    #: Spare word lines per crossbar stage (detection-driven remap).
    spare_rows: int = 2
    #: Same-way replays allowed after an in-place repair.
    max_inplace_replays: int = 2
    #: Audit every product against the pure-Python oracle ``a * b``.
    #: Off by default: production detection is the in-band residue and
    #: differential self-checks of the Karatsuba stages.
    oracle_audit: bool = False
    #: Run stage adder programs through the SIMD cycle packer
    #: (:mod:`repro.magic.passes`) in every bank way.  On by default —
    #: the service is the deployment surface, so it takes the packed
    #: schedules; set ``False`` for the paper's closed-form latencies.
    optimize: bool = True
    #: Batched executor backend every bank-way pipeline runs on (one of
    #: :data:`repro.magic.BACKEND_NAMES`).  The service defaults to the
    #: word-packed fast path; per-lane products, cycle counts, write
    #: counters and energy are bit-identical across backends, so the
    #: choice only moves simulation wall-clock.
    backend: str = "word"


class MultiplicationService:
    """Facade wiring scheduler, caches, dispatch, degrade and metrics.

    Submission is synchronous-but-batched: :meth:`submit` enqueues (or
    answers from cache) and opportunistically executes any batch the
    submission made ready; :meth:`drain` force-flushes the rest and
    returns every result accumulated since the previous drain, in
    request order.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        #: Unified observability sink: metrics instruments plus span
        #: emission.  ``self.metrics`` stays the same MetricsRegistry
        #: object it always was (snapshot schema unchanged).
        self.telemetry = TelemetryRegistry()
        self.metrics = self.telemetry.metrics
        self.scheduler = BinningScheduler(
            batch_size=self.config.batch_size,
            max_pending=self.config.max_pending,
            max_wait_ticks=self.config.max_wait_ticks,
        )
        self.program_cache = ProgramCache(self.config.program_cache_size)
        self.operand_cache = OperandCache(self.config.operand_cache_size)
        self.dispatcher = BankDispatcher(
            ways_per_width=self.config.ways_per_width,
            program_cache=self.program_cache,
            wear_leveling=self.config.wear_leveling,
            spare_rows=self.config.spare_rows,
            optimize=self.config.optimize,
            backend=self.config.backend,
        )
        self.degrade = DegradeController(
            self.dispatcher,
            policy=EndurancePolicy(self.config.write_budget),
            max_retries=self.config.max_retries,
            max_inplace_replays=self.config.max_inplace_replays,
            oracle_audit=self.config.oracle_audit,
        )
        self._next_request_id = 0
        self._batch_counter = 0
        self._completed: List[MulResult] = []
        self._jobs_completed = 0
        #: Cycles-saved already folded into the ``optimizer_cycles_saved``
        #: counter (stage programs build lazily, so savings only grow).
        self._optimizer_saved_reported = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        a: int,
        b: int,
        n_bits: int,
        priority: int = 0,
        deadline_cc: Optional[int] = None,
    ) -> int:
        """Submit one multiplication; returns its request id.

        Raises :class:`AdmissionError` on invalid operands/width and
        :class:`QueueFullError` under backpressure (the request is not
        enqueued in either case).
        """
        request = MulRequest(
            request_id=self._next_request_id,
            a=a,
            b=b,
            n_bits=n_bits,
            priority=priority,
            deadline_cc=deadline_cc,
        )
        self.submit_request(request)
        return request.request_id

    def submit_request(self, request: MulRequest) -> None:
        """Submit a pre-built :class:`MulRequest` (id chosen by caller)."""
        self._next_request_id = max(self._next_request_id, request.request_id) + 1
        with self.telemetry.span(
            "service.admit",
            request_id=request.request_id,
            n_bits=request.n_bits,
        ) as span:
            cached = self.operand_cache.lookup(
                request.a, request.b, request.n_bits
            )
            if cached is not None:
                span.set(cache_hit=True)
                self.metrics.counter("requests_submitted").inc()
                self.metrics.counter("operand_cache_hits").inc()
                self._completed.append(
                    MulResult(
                        request_id=request.request_id,
                        product=cached,
                        n_bits=request.n_bits,
                        way="cache",
                        batch_id=-1,
                        batch_occupancy=1,
                        latency_cc=0,
                        cache_hit=True,
                        deadline_met=(
                            None if request.deadline_cc is None else True
                        ),
                    )
                )
                return
            span.set(cache_hit=False)
            self.metrics.counter("operand_cache_misses").inc()
            try:
                flushes = self.scheduler.submit(request)
            except QueueFullError:
                self.metrics.counter("requests_rejected").inc()
                raise
            self.metrics.counter("requests_submitted").inc()
            self.metrics.histogram("queue_depth", COUNT_BUCKETS).observe(
                self.scheduler.pending_count
            )
        self._execute_flushes(flushes)

    def pump(self) -> None:
        """Advance logical time one tick (age-out under-full bins)."""
        self._execute_flushes(self.scheduler.pump())

    def drain(self) -> List[MulResult]:
        """Flush everything pending and return results in request order.

        Returns every result accumulated since the last drain (cache
        hits included) and clears the internal completion buffer.
        """
        self._execute_flushes(self.scheduler.drain())
        completed = sorted(self._completed, key=lambda r: r.request_id)
        self._completed = []
        return completed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_flushes(self, flushes: List[Flush]) -> None:
        for flush in flushes:
            self._execute_flush(flush)

    def _execute_flush(self, flush: Flush) -> None:
        pairs = [(p.request.a, p.request.b) for p in flush.pending]
        batch_id = self._batch_counter
        self._batch_counter += 1
        with self.telemetry.span(
            "service.batch",
            batch_id=batch_id,
            n_bits=flush.n_bits,
            reason=flush.reason,
            occupancy=flush.occupancy,
            request_ids=list(flush.request_ids),
        ) as span:
            recovery = self.degrade.execute(
                flush.n_bits, pairs, request_ids=flush.request_ids
            )
            report = recovery.report
            span.set(
                way=report.way_id,
                makespan_cc=report.makespan_cc,
                retries=recovery.retries,
            )
        self._jobs_completed += len(pairs)

        self.metrics.counter("batches_flushed").inc()
        self.metrics.counter(f"flush_reason_{flush.reason}").inc()
        self.metrics.counter("faults_detected").inc(recovery.detections)
        self.metrics.counter("rows_remapped").inc(len(recovery.remapped_rows))
        self.metrics.counter("inplace_replays").inc(recovery.inplace_replays)
        self.metrics.counter("fault_retries").inc(recovery.retries)
        self.metrics.counter("ways_retired").inc(
            len(recovery.faulty_ways) + len(recovery.retired_ways)
        )
        self.metrics.histogram("batch_occupancy", COUNT_BUCKETS).observe(
            flush.occupancy
        )
        self.metrics.histogram("batch_latency_cc", LATENCY_BUCKETS).observe(
            report.makespan_cc
        )

        for pending, product in zip(flush.pending, report.products):
            request = pending.request
            self.operand_cache.store(
                request.a, request.b, request.n_bits, product
            )
            deadline_met = (
                None
                if request.deadline_cc is None
                else report.makespan_cc <= request.deadline_cc
            )
            if deadline_met is not None:
                self.metrics.counter(
                    "deadlines_met" if deadline_met else "deadlines_missed"
                ).inc()
            self._completed.append(
                MulResult(
                    request_id=request.request_id,
                    product=product,
                    n_bits=request.n_bits,
                    way=report.way_id,
                    batch_id=batch_id,
                    batch_occupancy=flush.occupancy,
                    latency_cc=report.makespan_cc,
                    queued_ticks=flush.tick - pending.enqueue_tick,
                    retries=recovery.retries,
                    faulty_ways=recovery.faulty_ways,
                    deadline_met=deadline_met,
                )
            )

    # ------------------------------------------------------------------
    # Fault-injection hook (tests, benches, chaos drills)
    # ------------------------------------------------------------------
    def inject_fault(
        self,
        n_bits: int,
        way_index: int = 0,
        stage: str = "precompute",
        row: int = 8,
        col: int = 0,
        kind: str = FAULT_STUCK_AT_1,
    ) -> str:
        """Pin a stuck-at cell in one way's stage subarray.

        Returns the way id so callers can assert on its recovery.  The
        default target (precompute result row 8, column 0) corrupts
        chunk sums: ``sa1`` trips the stage's residue self-check,
        ``sa0`` violates the MAGIC init precondition mid-program — both
        surface as exceptions the degrade controller climbs the
        escalation ladder on (remap the row to a spare and replay in
        place; quarantine only when spares run out).
        """
        way = self.dispatcher.pool(n_bits)[way_index]
        array = getattr(way.pipeline.controller, stage).array
        inject(array, [StuckAtFault(row=row, col=col, kind=kind)])
        return way.way_id

    def arm_fault_hook(self, n_bits: int, hook, way_index: int = 0) -> str:
        """Attach a transient-fault injector to one way's crossbars.

        *hook* follows the executor fault-hook protocol
        (:class:`~repro.crossbar.faults.TransientFaultInjector`);
        pass ``None`` to disarm.  Returns the way id.
        """
        way = self.dispatcher.pool(n_bits)[way_index]
        way.pipeline.controller.fault_hook = hook
        return way.way_id

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _compile_cache_totals(self) -> Dict[str, int]:
        totals = {"hits": 0, "misses": 0, "evictions": 0}
        for way in self.dispatcher.all_ways():
            controller = way.pipeline.controller
            for stage_name in ("precompute", "multiply_stage", "postcompute"):
                executor = getattr(
                    getattr(controller, stage_name, None), "executor", None
                )
                if executor is None:
                    continue
                for key, value in executor.compile_cache_stats().as_dict().items():
                    totals[key] += value
        return totals

    def _optimizer_snapshot(self) -> Dict[str, object]:
        """Aggregated SIMD cycle-packer stats across every bank way.

        Additive section: ``{"enabled": bool}`` plus, when the packer is
        on, fleet-wide ``cycles_saved`` / ``pack_factor`` / ``by_pass``
        and the per-way breakdown.  Also folds newly observed savings
        into the ``optimizer_cycles_saved`` / ``optimizer_gates_packed``
        telemetry counters (stage programs build lazily, so the totals
        are monotone and the counters see each cycle saved once).
        """
        if not self.config.optimize:
            return {"enabled": False}
        per_way: Dict[str, Dict[str, object]] = {}
        totals = {"cycles_before": 0, "cycles_after": 0, "cycles_saved": 0}
        by_pass: Dict[str, int] = {}
        gates = 0
        for way in self.dispatcher.all_ways():
            stats = way.pipeline.controller.optimizer_stats()
            if not stats.get("enabled"):
                continue
            per_way[way.way_id] = stats
            for stage_stats in (stats["precompute"], stats["postcompute"]):
                for key in totals:
                    totals[key] += stage_stats[key]
                # Sum the raw gate counts; reconstructing them from the
                # per-stage ratio (pack_factor * cycles_after) re-weights
                # each stage by its own denominator and drops every
                # stage that reports the cycles_after == 0 convention,
                # so the fleet ratio drifted from summed-gates /
                # summed-pack-cycles whenever stages were uneven.
                gates += stage_stats["gates"]
                for name, saved in stage_stats["by_pass"].items():
                    by_pass[name] = by_pass.get(name, 0) + saved
        after = totals["cycles_after"]
        fresh = totals["cycles_saved"] - self._optimizer_saved_reported
        if fresh > 0:
            self.telemetry.counter("optimizer_cycles_saved").inc(fresh)
            self._optimizer_saved_reported = totals["cycles_saved"]
        return {
            "enabled": True,
            "cycles_before": totals["cycles_before"],
            "cycles_after": after,
            "cycles_saved": totals["cycles_saved"],
            "gates": gates,
            "pack_factor": gates / after if after else 1.0,
            "by_pass": by_pass,
            "ways": per_way,
        }

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict service state: metrics, caches, ways, endurance.

        Schema (see ``docs/architecture.md`` for field semantics)::

            {
              "counters": {...}, "histograms": {...},   # MetricsRegistry
              "caches": {"operand": .., "program": .., "compile": ..},
              "service": {"jobs_completed", "makespan_cc",
                          "throughput_per_mcc", "pending"},
              "ways": {way_id: utilisation},
              "endurance": {way_id: {...}},
              "reliability": {way_id: {"healthy", "spare_rows_free",
                                       "remap", "residue"}},
              "optimizer": {"enabled", "cycles_saved", "pack_factor",
                            "by_pass", "ways"},      # additive keys
            }
        """
        optimizer = self._optimizer_snapshot()
        snapshot = self.metrics.snapshot()
        snapshot["caches"] = {
            "operand": self.operand_cache.stats.as_dict(),
            "program": self.program_cache.stats.as_dict(),
            "compile": self._compile_cache_totals(),
        }
        snapshot["service"] = {
            "jobs_completed": self._jobs_completed,
            "makespan_cc": self.dispatcher.makespan_cc(),
            "throughput_per_mcc": self.dispatcher.throughput_per_mcc(
                self._jobs_completed
            ),
            "pending": self.scheduler.pending_count,
        }
        snapshot["ways"] = self.dispatcher.utilisation()
        snapshot["endurance"] = self.degrade.endurance_snapshot()
        snapshot["reliability"] = self.degrade.reliability_snapshot()
        snapshot["optimizer"] = optimizer
        return snapshot
