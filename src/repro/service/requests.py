"""Request/result value types of the multiplication service.

A :class:`MulRequest` is one client-submitted multiplication: two
operands, the datapath width they target, and service-level intent
(priority, optional deadline).  A :class:`MulResult` is the terminal
record the service hands back: the product plus the provenance needed
to audit how it was produced (which bank way, which batch, whether the
operand cache short-circuited simulation, how many fault retries were
spent).

Both are plain frozen dataclasses so they can cross any boundary — the
scheduler queues requests, the dispatcher stamps results, the metrics
layer only ever reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.karatsuba.controller import MIN_BITS
from repro.sim.exceptions import SimulationError


class ServiceError(SimulationError):
    """Base class for service-layer failures."""


class AdmissionError(ServiceError):
    """A request was rejected at admission (backpressure or validation)."""


class QueueFullError(AdmissionError):
    """The scheduler's bounded queue is at capacity."""


class DeadlineImpossibleError(AdmissionError):
    """A request's deadline is below the width's execution estimate.

    Raised at admission instead of silently accepting work that cannot
    meet its latency budget even if flushed immediately: the minimum
    cost of one batch pass at the request's width already exceeds
    ``deadline_cc``.
    """


class NoHealthyWayError(ServiceError):
    """Every bank way for a width is retired or quarantined."""


#: Width floor of the portfolio designs (Toom-3 and schoolbook accept
#: any width from here up; see :mod:`repro.portfolio.design`).
FLEXIBLE_MIN_BITS = 16


def validate_width(n_bits: int) -> None:
    """Admission-control width check, mirroring the datapath constraint."""
    if n_bits < MIN_BITS or n_bits % 4:
        raise AdmissionError(
            f"operand width must be a multiple of 4 and >= {MIN_BITS}, "
            f"got {n_bits}"
        )


def validate_flexible_width(n_bits: int) -> None:
    """Relaxed admission check for portfolio-routed requests.

    The portfolio's Toom-3 and schoolbook designs have no divisibility
    constraint, so off-grid widths (``n % 4 != 0``) are servable; only
    the common floor remains.
    """
    if n_bits < FLEXIBLE_MIN_BITS:
        raise AdmissionError(
            f"operand width must be >= {FLEXIBLE_MIN_BITS}, got {n_bits}"
        )


@dataclass(frozen=True)
class MulRequest:
    """One multiplication job as submitted by a client.

    Parameters
    ----------
    request_id:
        Caller-unique identifier; results are matched back through it.
    a, b:
        Non-negative operands, each fitting in *n_bits* bits.
    n_bits:
        Target datapath width (multiple of 4, >= 16); requests are
        binned by this value, so mixed-width traffic batches per width.
    priority:
        Higher drains first when a bin is flushed (ties are FIFO).
    deadline_cc:
        Optional latency budget in clock cycles; the service marks
        whether the executed batch met it (it never drops late work).
    """

    request_id: int
    a: int
    b: int
    n_bits: int
    priority: int = 0
    deadline_cc: Optional[int] = None
    #: Virtual arrival timestamp in clock cycles (open-loop drivers
    #: stamp it; ``None`` keeps the legacy tick-per-submission clock).
    arrival_cc: Optional[int] = None
    #: Workload kind this multiplication serves (``"mul"`` for plain
    #: traffic; the crypto workload layer stamps ``"modmul"`` /
    #: ``"modexp"`` / ``"msm"`` on the field multiplications it
    #: decomposes into).  Free-form provenance tag — the service bins
    #: by width only, never by kind.
    kind: str = "mul"
    #: Bit length of the modulus the multiplication reduces under
    #: (``None`` for plain multiplications).
    modulus_bits: Optional[int] = None
    #: Set by the service when portfolio routing is enabled and a
    #: feasibility-unconstrained design can serve this width: admission
    #: then only enforces the portfolio floor instead of the fixed
    #: datapath's multiple-of-4 constraint.
    flexible_width: bool = False

    def __post_init__(self) -> None:
        if self.flexible_width:
            validate_flexible_width(self.n_bits)
        else:
            validate_width(self.n_bits)
        if self.a < 0 or self.b < 0:
            raise AdmissionError("operands must be non-negative")
        if self.a >> self.n_bits or self.b >> self.n_bits:
            raise AdmissionError(
                f"operands must fit in {self.n_bits} bits"
            )
        if self.deadline_cc is not None and self.deadline_cc < 0:
            raise AdmissionError("deadline must be non-negative")
        if self.arrival_cc is not None and self.arrival_cc < 0:
            raise AdmissionError("arrival timestamp must be non-negative")
        if not self.kind or not isinstance(self.kind, str):
            raise AdmissionError("request kind must be a non-empty string")
        if self.modulus_bits is not None and self.modulus_bits < 2:
            raise AdmissionError("modulus_bits must be at least 2")

    @property
    def operands(self) -> Tuple[int, int]:
        return (self.a, self.b)


@dataclass(frozen=True)
class MulResult:
    """Terminal record of one serviced multiplication."""

    request_id: int
    product: int
    n_bits: int
    #: Identifier of the bank way that produced the product, e.g.
    #: ``"w64.1"``; ``"cache"`` when the operand cache answered.
    way: str
    #: Flush sequence number of the executed batch (-1 for cache hits).
    batch_id: int
    #: Jobs that shared the batch's SIMD bit-plane pass.
    batch_occupancy: int
    #: Pipelined makespan of the executed batch, in clock cycles
    #: (0 for cache hits — no array was touched).
    latency_cc: int
    #: Logical ticks (submissions) the request waited in its bin.
    queued_ticks: int = 0
    cache_hit: bool = False
    #: Fault-recovery retries spent on this request.
    retries: int = 0
    #: Ways quarantined while producing this result.
    faulty_ways: Tuple[str, ...] = field(default=())
    #: None when the request carried no deadline.
    deadline_met: Optional[bool] = None
    #: Virtual timeline (clock cycles): when the request arrived and
    #: when its batch completed.  Only stamped for requests submitted
    #: with ``arrival_cc`` (open-loop drivers); ``None`` otherwise.
    arrival_cc: Optional[int] = None
    completion_cc: Optional[int] = None
    #: Workload kind copied from the request (``"mul"`` for plain
    #: traffic; crypto decompositions stamp their parent kind).
    kind: str = "mul"
    #: Bit length of the modulus the multiplication served, when any.
    modulus_bits: Optional[int] = None

    @property
    def service_latency_cc(self) -> Optional[int]:
        """End-to-end latency on the virtual timeline: queueing wait
        plus batch execution, from arrival to batch completion."""
        if self.arrival_cc is None or self.completion_cc is None:
            return None
        return self.completion_cc - self.arrival_cc
