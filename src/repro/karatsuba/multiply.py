"""Multiplication stage of the CIM Karatsuba multiplier (Sec. IV-D).

Nine single-row multipliers (Sec. IV-D adopts the MultPIM approach [9]
with shared input/output memory) run in parallel, one memory row each.
The widest multiplication computes ``c_mm`` from ``n/4 + 2``-bit
operands, so every row is provisioned for that width:

* area: ``9 * 12 * (n/4 + 2)`` cells;
* latency: ``(n/4+2) * (ceil(log2(n/4+2)) + 14) + 3`` cc (all rows
  finish together because the controller schedules them in lock-step).

Wear-leveling alternates each row's hot scratch cells between two
partition-internal locations on successive multiplications, halving
the hottest cell's write accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arith import rowmul
from repro.arith.rowmul import RowMultiplier, RowMultiplierSpec
from repro.karatsuba.unroll import UnrolledPlan, build_plan
from repro.reliability.residue import DEFAULT_RESIDUE_BITS, ResidueChecker
from repro.sim.clock import Clock
from repro.sim.exceptions import DesignError

#: Parallel multiplier rows in the L = 2 design.
NUM_ROWS = 9


def operand_width(n_bits: int) -> int:
    """Widest partial-multiplication operand: ``n/4 + 2`` bits."""
    _check_width(n_bits)
    return n_bits // 4 + 2


def area_cells(n_bits: int) -> int:
    """Stage footprint: ``9 * 12 * (n/4 + 2)`` cells."""
    return NUM_ROWS * rowmul.area_cells(operand_width(n_bits))


def latency_cc(n_bits: int) -> int:
    """Stage latency, set by the widest row: ``m(ceil(log2 m)+14)+3``."""
    return rowmul.latency_cc(operand_width(n_bits))


def _check_width(n_bits: int) -> None:
    if n_bits < 8 or n_bits % 4:
        raise DesignError(
            f"the L=2 design needs n divisible by 4 and >= 8, got {n_bits}"
        )


@dataclass(frozen=True)
class MultiplicationResult:
    """Outputs of one multiplication pass."""

    products: Dict[str, int]
    cycles: int


class MultiplicationStage:
    """Cycle-accurate multiplication subarray (nine parallel rows)."""

    def __init__(
        self,
        n_bits: int,
        wear_leveling: bool = True,
        residue_bits: int = DEFAULT_RESIDUE_BITS,
    ):
        _check_width(n_bits)
        self.n_bits = n_bits
        self.width = operand_width(n_bits)
        self.plan: UnrolledPlan = build_plan(n_bits, 2)
        self.wear_leveling = wear_leveling
        self.checker = ResidueChecker("multiply", residue_bits)
        spec = RowMultiplierSpec(self.width)
        self.rows: Dict[str, RowMultiplier] = {
            step.out: RowMultiplier(spec) for step in self.plan.multiplications
        }
        if len(self.rows) != NUM_ROWS:
            raise AssertionError("unexpected L=2 multiplication count")
        self.clock = Clock()
        self.passes = 0

    # ------------------------------------------------------------------
    def process(self, operands: Dict[str, int]) -> MultiplicationResult:
        """Run the nine partial multiplications on named chunk values.

        *operands* must contain every name referenced by the plan
        (the precompute stage's output mapping is exactly that).
        """
        start = self.clock.cycles
        products = self._multiply_checked(operands)
        # All nine rows operate in lock-step SIMD fashion; the stage
        # advances by one row latency, not nine.
        self.clock.tick(latency_cc(self.n_bits), category="rowmul")
        if self.wear_leveling:
            self._rotate_hot_cells()
        self.passes += 1
        return MultiplicationResult(
            products=products, cycles=self.clock.cycles - start
        )

    def process_batch(
        self, operands_list: List[Dict[str, int]]
    ) -> List[MultiplicationResult]:
        """Run B multiplication passes, advancing the clock once.

        The nine rows already run in lock-step within a pass; batching
        extends the lock-step across operand sets, so the stage clock
        advances by a single row latency for the whole batch.  Products
        and wear accumulation are identical to calling :meth:`process`
        per job (each job still charges its writes and rotates the hot
        cells in order).
        """
        operands_list = list(operands_list)
        if not operands_list:
            return []
        cycles = latency_cc(self.n_bits)
        results: List[MultiplicationResult] = []
        for operands in operands_list:
            products = self._multiply_checked(operands)
            if self.wear_leveling:
                self._rotate_hot_cells()
            self.passes += 1
            results.append(MultiplicationResult(products=products, cycles=cycles))
        self.clock.tick(cycles, category="rowmul")
        return results

    def _multiply_checked(self, operands: Dict[str, int]) -> Dict[str, int]:
        """The nine partial multiplications, each residue-verified:
        ``res(z) == res(x)·res(y) mod (2^r − 1)`` per sub-product."""
        products: Dict[str, int] = {}
        for step in self.plan.multiplications:
            try:
                lhs = operands[step.lhs]
                rhs = operands[step.rhs]
            except KeyError as missing:
                raise DesignError(f"missing operand {missing} for {step.out}")
            product = self.rows[step.out].multiply(lhs, rhs)
            self.checker.check_product(
                product, self.checker.res(lhs), self.checker.res(rhs), step.out
            )
            products[step.out] = product
        return products

    def _rotate_hot_cells(self) -> None:
        """Swap each row's hot scratch columns with a cold pair.

        Modeled by rotating the per-partition write image so the 4x
        hot cells alternate between two physical locations, halving
        the long-run maximum (Sec. IV-B wear-leveling, applied to the
        multiplier rows)."""
        for row in self.rows.values():
            cells = row.cell_writes.reshape(self.width, rowmul.CELLS_PER_PARTITION)
            # Exchange the roles of columns (4,5) and (8,9) for the
            # next pass by physically relabeling the accumulated image.
            cells[:, [4, 5, 8, 9]] = cells[:, [8, 9, 4, 5]]

    # ------------------------------------------------------------------
    @property
    def area_cells(self) -> int:
        return area_cells(self.n_bits)

    def latency_cc(self) -> int:
        return latency_cc(self.n_bits)

    def max_writes(self) -> int:
        return max(row.max_writes() for row in self.rows.values())

    def row_names(self) -> List[str]:
        return list(self.rows)
