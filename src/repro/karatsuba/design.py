"""Public API: the CIM Karatsuba large-integer multiplier.

:class:`KaratsubaCimMultiplier` is the top-level object a user
instantiates: it wires the three pipelined stage subarrays behind the
Karatsuba Multiplication Controller (paper Fig. 5), multiplies
arbitrary operands bit-exactly through the cycle-accurate simulator,
and reports the paper's headline metrics.

>>> mul = KaratsubaCimMultiplier(64)
>>> mul.multiply(0xDEADBEEF, 0xC0FFEE)
3943961561335998397
>>> mul.metrics().area_cells
4404
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.crossbar.device import DeviceModel
from repro.crossbar.endurance import EnduranceReport, analyze
from repro.karatsuba import cost
from repro.karatsuba.pipeline import KaratsubaPipeline, PipelineTiming, StreamResult
from repro.sim.exceptions import DesignError
from repro.sim.stats import DesignMetrics


class KaratsubaCimMultiplier:
    """The paper's three-stage pipelined Karatsuba multiplier (L = 2).

    Parameters
    ----------
    n_bits:
        Operand width; a multiple of 4, at least 16.  The paper
        evaluates 64, 128, 256 and 384 (FHE and pairing-based ZKP
        sizes).
    wear_leveling:
        Enable the scratch-region exchange of Sec. IV-B (default on).
    device:
        Optional ReRAM device model override for energy/endurance
        studies.
    backend:
        Batched executor backend the pipeline stages run on (one of
        :data:`repro.magic.BACKEND_NAMES` or an instance); defaults to
        the pipeline's bit-plane engine.
    """

    def __init__(
        self,
        n_bits: int,
        wear_leveling: bool = True,
        device: DeviceModel = None,
        backend: object = "bitplane",
    ):
        self.n_bits = n_bits
        self.wear_leveling = wear_leveling
        self.pipeline = KaratsubaPipeline(
            n_bits, wear_leveling=wear_leveling, device=device, backend=backend
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def multiply(self, a: int, b: int) -> int:
        """Multiply two ``n_bits``-wide non-negative integers.

        The product is computed inside the simulated crossbars — chunk
        additions NOR-by-NOR on Kogge-Stone adders, partial products in
        the nine multiplier rows, recombination on the 1.5n-bit adder —
        and returned as a Python integer.
        """
        return self.pipeline.multiply(a, b)

    def multiply_stream(
        self, operand_pairs: Iterable[Tuple[int, int]]
    ) -> StreamResult:
        """Multiply a stream of operand pairs with pipelined timing."""
        return self.pipeline.run_stream(operand_pairs)

    def square(self, a: int) -> int:
        """Square an operand (a multiplication with both inputs equal)."""
        return self.multiply(a, a)

    def multiply_signed(self, a: int, b: int) -> int:
        """Two's-complement style signed multiplication.

        The datapath is unsigned (Sec. IV); signed operands are handled
        sign-magnitude at the controller: multiply magnitudes, apply the
        product sign.  Magnitudes must fit ``n_bits``.
        """
        magnitude = self.multiply(abs(a), abs(b))
        return -magnitude if (a < 0) != (b < 0) and magnitude else magnitude

    def squaring_metrics(self):
        """Cost of the dedicated squarer variant (see
        :func:`repro.karatsuba.cost.squaring_cost`)."""
        return cost.squaring_cost(self.n_bits)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def timing(self) -> PipelineTiming:
        """Static stage/pipeline timing."""
        return self.pipeline.timing()

    def metrics(self) -> DesignMetrics:
        """Headline metrics as reported in the paper's Table I."""
        return cost.design_metrics(self.n_bits, depth=2)

    def measured_metrics(self) -> DesignMetrics:
        """Metrics from the live simulator state (stage clocks and wear
        counters) rather than the closed forms; these agree with
        :meth:`metrics` and the tests assert it."""
        timing = self.timing()
        controller = self.pipeline.controller
        return DesignMetrics(
            name="ours-L2-measured",
            n_bits=self.n_bits,
            latency_cc=timing.latency_cc,
            area_cells=controller.area_cells,
            throughput_per_mcc=timing.throughput_per_mcc,
            max_writes_per_cell=None,
        )

    def endurance_reports(self) -> List[EnduranceReport]:
        """Wear summaries of the two crossbar-based stages."""
        controller = self.pipeline.controller
        return [
            analyze(controller.precompute.array),
            analyze(controller.postcompute.array),
        ]

    def lifetime_multiplications(self, endurance_cycles: int = 10**10) -> int:
        """Design lifetime in multiplications, limited by the hottest
        cell at the analytic per-multiplication wear rate."""
        per_mult = cost.max_writes_per_cell(self.n_bits)
        return endurance_cycles // per_mult

    # ------------------------------------------------------------------
    @property
    def area_cells(self) -> int:
        """Total memristor count across the three subarrays."""
        return self.pipeline.controller.area_cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        timing = self.timing()
        return (
            f"KaratsubaCimMultiplier(n={self.n_bits}, "
            f"area={self.area_cells} cells, "
            f"throughput={timing.throughput_per_mcc:.0f}/Mcc)"
        )


def supported_widths(max_bits: int = 512) -> List[int]:
    """Widths the L = 2 design accepts up to *max_bits*."""
    if max_bits < 16:
        raise DesignError("max_bits must be at least 16")
    return [n for n in range(16, max_bits + 1) if n % 4 == 0]
