"""Physical floorplan model: subarray dimensions and line lengths.

The paper's practicality argument against single-row designs (Sec. II-C
and Sec. V) is electrical: long bit lines accumulate parasitic IR drop
[7], [20], so a design's *longest line* matters as much as its cell
count.  This module derives, for every design point, the dimensions of
each subarray, the longest word line (columns driven at once) and the
longest bit line (rows sharing a column), and checks them against a
configurable practicality limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arith import rowmul
from repro.arith.koggestone import SCRATCH_ROWS
from repro.baselines import leitersdorf
from repro.sim.exceptions import DesignError

#: Line length beyond which parasitic IR drop is considered impractical
#: (the paper flags MultPIM's 5,369-cell row; typical crossbar tiles
#: stay in the 512-2048 range [20]).
DEFAULT_LINE_LIMIT = 2048


@dataclass(frozen=True)
class SubarrayPlan:
    """Dimensions of one stage subarray."""

    name: str
    rows: int
    cols: int

    @property
    def cells(self) -> int:
        return self.rows * self.cols

    @property
    def word_line_length(self) -> int:
        """Cells on one word line = number of columns."""
        return self.cols

    @property
    def bit_line_length(self) -> int:
        """Cells on one bit line = number of rows."""
        return self.rows


@dataclass(frozen=True)
class Floorplan:
    """All subarrays of one design point."""

    n_bits: int
    subarrays: List[SubarrayPlan]

    @property
    def total_cells(self) -> int:
        return sum(sub.cells for sub in self.subarrays)

    @property
    def longest_word_line(self) -> int:
        return max(sub.word_line_length for sub in self.subarrays)

    @property
    def longest_bit_line(self) -> int:
        return max(sub.bit_line_length for sub in self.subarrays)

    @property
    def longest_line(self) -> int:
        return max(self.longest_word_line, self.longest_bit_line)

    def practical(self, limit: int = DEFAULT_LINE_LIMIT) -> bool:
        """True when every line stays within the parasitic limit."""
        return self.longest_line <= limit


def ours(n_bits: int) -> Floorplan:
    """Floorplan of the paper's three-stage design (L = 2)."""
    _check(n_bits)
    quarter = n_bits // 4
    return Floorplan(
        n_bits=n_bits,
        subarrays=[
            SubarrayPlan(
                name="precompute",
                rows=8 + 10 + SCRATCH_ROWS,
                cols=quarter + 2,
            ),
            SubarrayPlan(
                name="multiply",
                rows=9,
                cols=rowmul.area_cells(quarter + 2),
            ),
            SubarrayPlan(
                name="postcompute",
                rows=8 + SCRATCH_ROWS,
                cols=(3 * n_bits) // 2,
            ),
        ],
    )


def multpim(n_bits: int) -> Floorplan:
    """MultPIM's single-row arrangement [9]."""
    _check(n_bits)
    return Floorplan(
        n_bits=n_bits,
        subarrays=[
            SubarrayPlan(
                name="multpim-row", rows=1, cols=leitersdorf.row_length(n_bits)
            )
        ],
    )


def wallace(n_bits: int) -> Floorplan:
    """The MAJORITY Wallace tree [8]: a near-square n^2-cell array."""
    _check(n_bits)
    from repro.baselines import lakshmi

    cells = lakshmi.area_cells(n_bits)
    cols = 4 * n_bits                      # partial products, 2 per row pair
    rows = -(-cells // cols)
    return Floorplan(
        n_bits=n_bits,
        subarrays=[SubarrayPlan(name="wallace-array", rows=rows, cols=cols)],
    )


def comparison(n_bits: int = 384) -> str:
    """Sec. V's row-length argument as a table."""
    from repro.eval.report import format_table

    plans = [("ours", ours(n_bits)), ("multpim [9]", multpim(n_bits)),
             ("wallace [8]", wallace(n_bits))]
    rows = []
    for name, plan in plans:
        rows.append(
            (
                name,
                plan.total_cells,
                plan.longest_word_line,
                plan.longest_bit_line,
                "yes" if plan.practical() else "NO",
            )
        )
    return format_table(
        ("design", "cells", "longest WL", "longest BL", "practical"),
        rows,
        title=(
            f"Floorplan at n = {n_bits} "
            f"(practicality limit {DEFAULT_LINE_LIMIT} cells/line)"
        ),
    )


def _check(n_bits: int) -> None:
    if n_bits < 16 or n_bits % 4:
        raise DesignError(
            f"floorplans need n divisible by 4 and >= 16, got {n_bits}"
        )
