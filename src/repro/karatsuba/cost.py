"""Analytic area/latency/throughput model of the CIM Karatsuba design.

Implements the closed forms of Sec. IV for the shipped L = 2 design and
generalises every stage over the unroll depth L, which is what the
paper's Fig. 4 sweeps to justify choosing L = 2.

Generalisation over L (the paper fixes L = 2; these reductions follow
the same construction):

* **precompute** — ``2^(L+1)`` input writes, ``2*(3^L - 2^L)`` additions
  on a Kogge-Stone of the widest chunk-sum width ``n/2^L + L - 1``,
  one reset cycle.
* **multiply** — ``3^L`` parallel rows of width ``n/2^L + L``.
* **postcompute** — a 1.5n-wide adder (the top-level LSB pass-through
  works for every L); the number of passes comes from a greedy batching
  scheduler over the plan's combine tree, which reproduces the paper's
  11 passes exactly at L = 2.

The max-writes-per-cell model reflects wear-leveling (which halves the
per-region accumulation) plus the small reorder/reset constants; it
reproduces the paper's 81 / 92 / 134 / 198 column cell-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arith import rowmul
from repro.arith.bitops import ceil_div, ceil_log2
from repro.arith.koggestone import SCRATCH_ROWS
from repro.karatsuba.unroll import UnrolledPlan, build_plan
from repro.sim.exceptions import DesignError
from repro.sim.stats import DesignMetrics


@dataclass(frozen=True)
class StageCost:
    """Area and latency of one pipeline stage."""

    name: str
    area_cells: int
    latency_cc: int


@dataclass(frozen=True)
class DesignCost:
    """Full cost breakdown of one (n, L) design point."""

    n_bits: int
    depth: int
    precompute: StageCost
    multiply: StageCost
    postcompute: StageCost

    @property
    def stages(self) -> Tuple[StageCost, StageCost, StageCost]:
        return (self.precompute, self.multiply, self.postcompute)

    @property
    def area_cells(self) -> int:
        return sum(stage.area_cells for stage in self.stages)

    @property
    def latency_cc(self) -> int:
        return sum(stage.latency_cc for stage in self.stages)

    @property
    def bottleneck_cc(self) -> int:
        return max(stage.latency_cc for stage in self.stages)

    @property
    def throughput_per_mcc(self) -> float:
        return 1e6 / self.bottleneck_cc

    @property
    def atp(self) -> float:
        """Area-time product: cells / throughput (the paper's metric)."""
        return self.area_cells / self.throughput_per_mcc


# ----------------------------------------------------------------------
# Stage models, generalised over L
# ----------------------------------------------------------------------
def _validate(n_bits: int, depth: int) -> None:
    if depth < 1:
        raise DesignError("unroll depth must be at least 1")
    if n_bits <= 0 or n_bits % (1 << depth):
        raise DesignError(
            f"n_bits must be a positive multiple of 2**{depth}, got {n_bits}"
        )


def adder_latency_cc(width: int) -> int:
    """Kogge-Stone pass latency: ``11*ceil(log2 w) + 17`` cc."""
    return 11 * ceil_log2(max(width, 2)) + 17


def precompute_cost(n_bits: int, depth: int = 2) -> StageCost:
    """Generalised precompute stage cost (paper Sec. IV-C at L = 2)."""
    _validate(n_bits, depth)
    inputs = 2 << depth                      # 2^(L+1) chunks
    additions = 2 * (3**depth - 2**depth)
    adder_width = n_bits // (1 << depth) + depth - 1 if depth > 1 else (
        n_bits // 2
    )
    cols = adder_width + 1
    rows = inputs + additions + SCRATCH_ROWS
    latency = inputs + additions * adder_latency_cc(adder_width) + 1
    return StageCost(name="precompute", area_cells=rows * cols, latency_cc=latency)


def multiply_cost(n_bits: int, depth: int = 2) -> StageCost:
    """Generalised multiplication stage cost (paper Sec. IV-D at L = 2)."""
    _validate(n_bits, depth)
    width = n_bits // (1 << depth) + depth
    rows = 3**depth
    return StageCost(
        name="multiply",
        area_cells=rows * rowmul.area_cells(width),
        latency_cc=rowmul.latency_cc(width),
    )


def postcompute_passes(plan: UnrolledPlan, window_bits: int) -> int:
    """Adder passes of the batched postcompute schedule.

    Batching: operations of the same kind at the same tree level share
    a full-width pass when their operand blocks (each spanning its
    result width plus one gap column) pack side by side into the
    window; the pass count per group is a first-fit-decreasing bin
    packing, mirroring how the stage lays blocks out.  The top node
    always contributes three passes (t-add, subtract, and the final
    top-1.5n addition; its low product appends for free).  Reproduces
    the paper's 11 passes for L = 2 at every operand width.
    """
    by_level: Dict[int, List] = {}
    for node in plan.combine_nodes[:-1]:
        by_level.setdefault(node.level, []).append(node)

    def packed(spans: List[int]) -> int:
        """First-fit-decreasing bin count with bins of *window_bits*."""
        if not spans:
            return 0
        bins: List[int] = []
        for span in sorted(spans, reverse=True):
            span = min(span, window_bits)   # a lone op always fits
            for index, free in enumerate(bins):
                if span <= free:
                    bins[index] = free - span
                    break
            else:
                bins.append(window_bits - span)
        return len(bins)

    passes = 0
    for _, nodes in sorted(by_level.items()):
        # t = low + high: block spans the high product plus carry + gap.
        passes += packed(
            [plan.product_widths[node.high] + 2 for node in nodes]
        )
        # ~c = mid - t: block spans the mid product plus gap.
        passes += packed(
            [plan.product_widths[node.mid] + 2 for node in nodes]
        )
        # u = low + (high << 2s) for nodes whose low cannot append.
        passes += packed(
            [
                node.result_width + 2
                for node in nodes
                if not node.appendable
            ]
        )
        # c = (high || low) + ~c << s, one per node.
        passes += packed([node.result_width + 2 for node in nodes])
    # Top node: t-add, subtract, final top-window addition.
    passes += 3
    return passes


def postcompute_cost(n_bits: int, depth: int = 2) -> StageCost:
    """Generalised postcompute stage cost (paper Sec. IV-E at L = 2)."""
    _validate(n_bits, depth)
    plan = build_plan(n_bits, depth)
    window = (3 * n_bits) // 2
    passes = postcompute_passes(plan, window)
    reorder = 2 * 3**depth
    latency = passes * adder_latency_cc(window) + reorder
    # Data rows: the partial products packed into 1.5n-wide rows, doubled
    # for reordering headroom, plus the 12 adder scratch rows.
    product_bits = sum(
        step.product_width + 1 for step in plan.multiplications
    )
    data_rows = 2 * ceil_div(product_bits, window)
    rows = data_rows + SCRATCH_ROWS
    return StageCost(
        name="postcompute", area_cells=rows * window, latency_cc=latency
    )


# ----------------------------------------------------------------------
# Design-point aggregation
# ----------------------------------------------------------------------
def design_cost(n_bits: int, depth: int = 2) -> DesignCost:
    """Full analytic cost of one (n, L) design point."""
    return DesignCost(
        n_bits=n_bits,
        depth=depth,
        precompute=precompute_cost(n_bits, depth),
        multiply=multiply_cost(n_bits, depth),
        postcompute=postcompute_cost(n_bits, depth),
    )


def squaring_cost(n_bits: int) -> DesignCost:
    """Cost of a dedicated squarer variant (extension).

    Squaring halves the precompute work: only the five a-side chunk
    additions exist (b = a), and the eight input writes drop to four.
    The nine partial multiplications become squarings of the same
    widths (same row-multiplier latency), and postcompute is unchanged.
    Crypto workloads are squaring-heavy (about 2/3 of a modexp), so the
    precompute saving lifts the stage balance.
    """
    _validate(n_bits, 2)
    base = design_cost(n_bits, 2)
    adds = 5
    inputs = 4
    adder_width = n_bits // 4 + 1
    pre_latency = inputs + adds * adder_latency_cc(adder_width) + 1
    pre_rows = inputs + adds + SCRATCH_ROWS
    precompute = StageCost(
        name="precompute",
        area_cells=pre_rows * (adder_width + 1),
        latency_cc=pre_latency,
    )
    return DesignCost(
        n_bits=n_bits,
        depth=2,
        precompute=precompute,
        multiply=base.multiply,
        postcompute=base.postcompute,
    )


def max_writes_per_cell(n_bits: int) -> int:
    """Hottest-cell writes per multiplication for the L = 2 design.

    Two candidate hot spots, both wear-leveled (halved):

    * postcompute scratch: 11 passes x 2*ceil(log2 1.5n) writes, halved,
      plus 4 reorder writes -> ``11*ceil(log2 1.5n) + 4``;
    * multiplier-row scratch: ``4*(n/4+2)`` writes, halved, plus 2
      input writes -> ``2*(n/4+2) + 2``.

    Reproduces the paper's 81 / 92 / 134 / 198 for n = 64..384.
    """
    _validate(n_bits, 2)
    post = 11 * ceil_log2((3 * n_bits) // 2) + 4
    mult = 2 * (n_bits // 4 + 2) + 2
    return max(post, mult)


@dataclass(frozen=True)
class ResidueOverhead:
    """Cost of the in-band mod-(2^r - 1) stage-boundary checks.

    Each check folds one sensed word into an r-bit residue with a
    log-depth tree of r-bit end-around-carry additions over the word's
    ``ceil(w / r)`` r-bit digits, then one compare against the
    predicted residue:

        cycles per check = ceil(log2 ceil(w / r)) + 1.

    The accumulator occupies scratch cells inside the stage subarray,
    costing about ``2r`` writes per check (the folded digit plus the
    end-around carry fix-up).
    """

    n_bits: int
    depth: int
    residue_bits: int
    checks_per_stage: Tuple[int, int, int]
    cycles_per_check: Tuple[int, int, int]

    @property
    def checks(self) -> int:
        return sum(self.checks_per_stage)

    @property
    def latency_cc(self) -> int:
        return sum(
            count * cycles
            for count, cycles in zip(self.checks_per_stage, self.cycles_per_check)
        )

    @property
    def writes(self) -> int:
        return self.checks * 2 * self.residue_bits

    def fraction_of(self, pipeline_latency_cc: int) -> float:
        """Residue-check latency as a fraction of a pipeline latency."""
        if pipeline_latency_cc <= 0:
            raise DesignError("pipeline latency must be positive")
        return self.latency_cc / pipeline_latency_cc


def _fold_cycles(word_bits: int, residue_bits: int) -> int:
    digits = ceil_div(word_bits, residue_bits)
    return ceil_log2(max(digits, 2)) + 1


def residue_overhead(
    n_bits: int, depth: int = 2, residue_bits: int = 8
) -> ResidueOverhead:
    """Per-multiplication cost of the ABFT residue checks.

    One check per precompute addition (``2*(3^L - 2^L)``), one per
    partial product (``3^L``), and one per postcompute combine pass.
    At n = 256, L = 2, r = 8 this is 10x5 + 9x6 + 11x7 = 181 cc,
    about 5% of the 3632 cc pipeline fill latency.
    """
    _validate(n_bits, depth)
    if residue_bits < 2:
        raise DesignError("residue width must be at least 2 bits")
    pre_checks = 2 * (3**depth - 2**depth)
    pre_width = n_bits // (1 << depth) + depth - 1 if depth > 1 else n_bits // 2
    mul_checks = 3**depth
    mul_width = 2 * (n_bits // (1 << depth) + depth)
    plan = build_plan(n_bits, depth)
    window = (3 * n_bits) // 2
    post_checks = postcompute_passes(plan, window)
    return ResidueOverhead(
        n_bits=n_bits,
        depth=depth,
        residue_bits=residue_bits,
        checks_per_stage=(pre_checks, mul_checks, post_checks),
        cycles_per_check=(
            _fold_cycles(pre_width, residue_bits),
            _fold_cycles(mul_width, residue_bits),
            _fold_cycles(window, residue_bits),
        ),
    )


def design_metrics(n_bits: int, depth: int = 2) -> DesignMetrics:
    """Headline :class:`DesignMetrics` for Table I's "Our" rows."""
    cost = design_cost(n_bits, depth)
    return DesignMetrics(
        name=f"ours-L{depth}",
        n_bits=n_bits,
        latency_cc=cost.latency_cc,
        area_cells=cost.area_cells,
        throughput_per_mcc=cost.throughput_per_mcc,
        max_writes_per_cell=max_writes_per_cell(n_bits) if depth == 2 else None,
    )


def atp_sweep(
    sizes: Tuple[int, ...] = (64, 128, 256, 384, 512, 768, 1024),
    depths: Tuple[int, ...] = (1, 2, 3, 4),
) -> Dict[int, Dict[int, float]]:
    """Fig. 4 data: ATP per unroll depth across multiplication sizes.

    Returns ``{depth: {n: atp}}``; sizes not divisible by ``2**depth``
    are skipped for that depth.
    """
    sweep: Dict[int, Dict[int, float]] = {}
    for depth in depths:
        series: Dict[int, float] = {}
        for n_bits in sizes:
            if n_bits % (1 << depth):
                continue
            series[n_bits] = design_cost(n_bits, depth).atp
        sweep[depth] = series
    return sweep


def optimal_depth(n_bits: int, depths: Tuple[int, ...] = (1, 2, 3, 4)) -> int:
    """Depth with the lowest ATP at *n_bits* (the paper finds L = 2)."""
    candidates = [
        (design_cost(n_bits, depth).atp, depth)
        for depth in depths
        if n_bits % (1 << depth) == 0
    ]
    if not candidates:
        raise DesignError(f"no feasible depth for n = {n_bits}")
    return min(candidates)[1]
