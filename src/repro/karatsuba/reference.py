"""Reference (non-simulating) multiplier with the same interface.

Workload studies (elliptic curves, MSM, big NTTs) need thousands of
field multiplications; routing each through the NOR-level simulator is
bit-exact but slow.  :class:`ReferenceMultiplier` is a drop-in for
:class:`~repro.karatsuba.design.KaratsubaCimMultiplier` that computes
with native integers while exposing identical width checks, metrics,
and timing (from the analytic cost model) — so cycle projections stay
honest while host time stays bounded.

The equivalence of the two paths is itself under test: the property
suite asserts the simulating multiplier matches native products, so
substituting this class changes nothing but host speed.
"""

from __future__ import annotations

from repro.karatsuba import cost
from repro.karatsuba.pipeline import PipelineTiming
from repro.sim.exceptions import DesignError
from repro.sim.stats import DesignMetrics


class ReferenceMultiplier:
    """Interface-compatible, non-simulating stand-in for the CIM design."""

    def __init__(self, n_bits: int):
        if n_bits < 16 or n_bits % 4:
            raise DesignError(
                f"operand width must be a multiple of 4 and >= 16, got {n_bits}"
            )
        self.n_bits = n_bits
        self.multiplications = 0

    # ------------------------------------------------------------------
    def multiply(self, a: int, b: int) -> int:
        """Width-checked product (native arithmetic)."""
        if a < 0 or b < 0:
            raise DesignError("operands must be non-negative")
        if a >> self.n_bits or b >> self.n_bits:
            raise DesignError(f"operands must fit in {self.n_bits} bits")
        self.multiplications += 1
        return a * b

    def square(self, a: int) -> int:
        return self.multiply(a, a)

    # ------------------------------------------------------------------
    def timing(self) -> PipelineTiming:
        dc = cost.design_cost(self.n_bits, 2)
        return PipelineTiming(
            n_bits=self.n_bits,
            stage_latencies=(
                dc.precompute.latency_cc,
                dc.multiply.latency_cc,
                dc.postcompute.latency_cc,
            ),
        )

    def metrics(self) -> DesignMetrics:
        return cost.design_metrics(self.n_bits, depth=2)

    @property
    def area_cells(self) -> int:
        return cost.design_cost(self.n_bits, 2).area_cells

    def cycle_cost(self) -> int:
        """Pipelined cycles consumed by the multiplications so far."""
        return self.multiplications * self.timing().bottleneck_cc
