"""Postcomputation stage of the CIM Karatsuba multiplier (Sec. IV-E).

The stage combines the nine partial products into the ``2n``-bit
result on a ``(8 + 12) x 1.5n`` subarray holding one ``1.5n``-bit
Kogge-Stone adder.  The paper's optimized schedule needs exactly
**11 adder passes** thanks to two tricks this module reproduces
faithfully:

* **batching** — two narrow operations ride one full-width pass by
  placing their operand pairs in disjoint column blocks.  A zeroed gap
  column yields propagate 0 for additions (carry killed) and a
  harmless zero borrow for subtractions, so blocks cannot interact;
* **LSB pass-through** — the low ``n/2`` bits of ``c_l`` are already
  the low bits of the final product, so the last addition runs only on
  the top ``1.5n`` bits (saving 25% of stage area relative to a
  ``2n``-wide adder).

The pass schedule (s = n/4, h = n/2):

====  ===  ====================================================
pass  op   computation
====  ===  ====================================================
 1    add  t_l = c_ll + c_lh   and   t_h = c_hl + c_hh  (batched)
 2    sub  ~c_lm = c_lm - t_l  and  ~c_hm = c_hm - t_h  (batched)
 3    add  t_m = c_ml + c_mh
 4    sub  ~c_mm = c_mm - t_m
 5    add  c_l = (c_lh || c_ll) + ~c_lm << s
 6    add  c_h = (c_hh || c_hl) + ~c_hm << s
 7    add  u_m = c_ml + (c_mh << h)        (c_ml too wide to append)
 8    add  c_m = u_m + ~c_mm << s
 9    add  t = c_l + c_h
10    sub  ~c_m = c_m - t
11    add  T = ((c_l >> h) || c_h << h) + ~c_m   (top 1.5n bits only)
====  ===  ====================================================

Result: ``c = (T << h) | (c_l mod 2^h)``.  Latency:
``11*(11*ceil(log2(1.5n)) + 17) + 18`` cc, the paper's closed form
(the 18 cc covering operand reordering and resets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arith.bitops import ceil_log2, mask
from repro.arith.koggestone import (
    SCRATCH_ROWS,
    KoggeStoneAdder,
    KoggeStoneLayout,
)
from repro.crossbar.array import CrossbarArray
from repro.magic.backend import get_backend
from repro.crossbar.endurance import WearLevelingController
from repro.magic.executor import MagicExecutor, int_to_bits
from repro.magic.passes import summarize_reports
from repro.magic.program import Program, ProgramBuilder
from repro.reliability.residue import DEFAULT_RESIDUE_BITS, ResidueChecker
from repro.sim.clock import Clock
from repro.sim.exceptions import DesignError, StageSelfCheckError

#: Data rows of the stage (paper Fig. 7: 8 available memory rows).
DATA_ROWS = 8
TOTAL_ROWS = DATA_ROWS + SCRATCH_ROWS

#: Adder passes in the optimized schedule.
NUM_PASSES = 11

#: Reordering/reset overhead charged by the paper (2 cc per product).
REORDER_CYCLES = 18


def columns(n_bits: int) -> int:
    """Stage width: ``1.5 n`` bit lines."""
    _check_width(n_bits)
    return (3 * n_bits) // 2


def area_cells(n_bits: int) -> int:
    """Stage footprint: ``(8 + 12) * 1.5n`` cells."""
    return TOTAL_ROWS * columns(n_bits)


def latency_cc(n_bits: int) -> int:
    """Stage latency: ``121*ceil(log2(1.5n)) + 187 + 18`` cc."""
    _check_width(n_bits)
    per_pass = 11 * ceil_log2(columns(n_bits)) + 17
    return NUM_PASSES * per_pass + REORDER_CYCLES


def _check_width(n_bits: int) -> None:
    if n_bits < 16 or n_bits % 4:
        raise DesignError(
            f"the L=2 postcompute needs n divisible by 4 and >= 16, got {n_bits}"
        )


@dataclass(frozen=True)
class PostcomputeResult:
    """Output of one postcomputation pass."""

    product: int
    cycles: int


class PostcomputeStage:
    """Cycle-accurate postcomputation subarray.

    Every pass stages its operand words into the adder's x/y rows
    (reordering, charged as the paper's lump 18 cc per multiplication),
    executes the full-width Kogge-Stone program NOR-by-NOR, and senses
    the result row.  Arithmetic is therefore bit-exact through the real
    in-memory adder, while latency follows the paper's accounting.
    """

    def __init__(
        self,
        n_bits: int,
        wear_leveling: bool = True,
        device=None,
        spare_rows: int = 2,
        residue_bits: int = DEFAULT_RESIDUE_BITS,
        optimize: bool = False,
        backend: object = "bitplane",
    ):
        _check_width(n_bits)
        self.n_bits = n_bits
        #: Run adder programs through the SIMD cycle packer
        #: (:mod:`repro.magic.passes`).  Off by default so the stage
        #: reproduces the paper's per-op cycle counts exactly.
        self.optimize = optimize
        #: Batched execution strategy (see :mod:`repro.magic.backend`).
        #: Per-lane results and accounting are bit-identical across
        #: backends; defaults to the historical bit-plane path.
        self.backend = get_backend(backend)
        self.cols = columns(n_bits)
        self.adder_width = self.cols - 1
        self.array = CrossbarArray(
            TOTAL_ROWS, self.cols, device=device, spare_rows=spare_rows
        )
        self.checker = ResidueChecker("postcompute", residue_bits)
        self.clock = Clock()
        self.executor = MagicExecutor(self.array, clock=self.clock)
        self.wear_leveling = wear_leveling
        # Exchange the lower and upper half of the subarray after every
        # multiplication: all 20 rows alternate between two physical
        # locations, so data and scratch wear both halve.
        half_rows = TOTAL_ROWS // 2
        self.leveler = WearLevelingController(
            region_a=list(range(half_rows)),
            region_b=list(range(half_rows, TOTAL_ROWS)),
        )
        self._adders: Dict[bool, KoggeStoneAdder] = {}
        self._initialised_states = set()
        #: Per wear state: (mega program, clock histogram, cycles/job).
        self._mega: Dict[bool, Tuple[Program, Dict[str, int], int]] = {}
        self.passes = 0

    # ------------------------------------------------------------------
    def _adder(self) -> KoggeStoneAdder:
        state = self.leveler.swapped
        if state not in self._adders:
            physical = self.leveler.physical_row
            layout = KoggeStoneLayout(
                width=self.adder_width,
                col0=0,
                x_row=physical(5),
                y_row=physical(6),
                out_row=physical(7),
                scratch_rows=tuple(
                    physical(r) for r in range(DATA_ROWS, TOTAL_ROWS)
                ),
            )
            self._adders[state] = KoggeStoneAdder(layout)
        return self._adders[state]

    # ------------------------------------------------------------------
    def process(self, products: Dict[str, int]) -> PostcomputeResult:
        """Combine the nine partial products into ``a * b``."""
        required = {
            "c_ll", "c_lh", "c_lm", "c_hl", "c_hh", "c_hm",
            "c_ml", "c_mh", "c_mm",
        }
        missing = required - products.keys()
        if missing:
            raise DesignError(f"missing partial products: {sorted(missing)}")
        start = self.clock.cycles
        passes, product = self._plan_passes(products)

        adder = self._adder()
        self._power_up(adder)

        # Stage the incoming products in the packed data rows so wear
        # accounting sees their writes (2 products per row, Fig. 7a).
        self._store_inputs(products)

        for index, (op, x, y) in enumerate(passes):
            self._run(adder, op, x, y, f"pass-{index + 1}")

        # Reset the data region so that, after a wear-leveling swap, the
        # incoming scratch rows hold logic one.  The cycle is part of
        # the paper's 18 cc reordering/reset budget charged below.
        physical = self.leveler.physical_row
        self.array.init_rows([physical(r) for r in range(DATA_ROWS)])

        # Reordering/reset overhead (lump, per the paper's accounting).
        self.clock.tick(REORDER_CYCLES, category="reorder")

        if self.wear_leveling:
            self.leveler.swap()
        self.passes += 1
        return PostcomputeResult(product=product, cycles=self.clock.cycles - start)

    #: Fixed op sequence of the 11-pass schedule (data-independent).
    PASS_OPS = ("add", "sub", "add", "sub", "add",
                "add", "add", "add", "add", "sub", "add")

    #: Packed input slots, two per data row (Fig. 7a).
    _INPUT_NAMES = ("c_ll", "c_lh", "c_lm", "c_hl", "c_hh", "c_hm",
                    "c_ml", "c_mh", "c_mm")

    def _plan_passes(
        self, products: Dict[str, int]
    ) -> Tuple[List[Tuple[str, int, int]], int]:
        """Pure-integer unrolling of the 11-pass schedule.

        Returns the operand pair of every pass plus the final product.
        The in-memory execution (sequential or batched) follows this
        plan and asserts each sensed sum against it, so arithmetic
        remains verified bit-for-bit through the real adder.
        """
        n = self.n_bits
        quarter, half = n // 4, n // 2
        passes: List[Tuple[str, int, int]] = []

        def run(op: str, x: int, y: int) -> int:
            if x >> self.cols or y >> self.cols:
                raise DesignError("postcompute operand exceeds the adder window")
            if op == "sub" and y > x:
                raise DesignError("postcompute subtraction went negative")
            if op == "add" and (x + y) >> self.cols:
                raise DesignError("postcompute addition would overflow the window")
            passes.append((op, x, y))
            return x + y if op == "add" else x - y

        p = products
        values: Dict[str, int] = {}

        # Pass 1/2: level-2 tilde values for the l and h nodes, batched.
        off = half + 2
        t_lh = run("add",
                   p["c_ll"] | (p["c_hl"] << off),
                   p["c_lh"] | (p["c_hh"] << off))
        values["t_l"] = t_lh & mask(off)
        values["t_h"] = t_lh >> off
        off = half + 4
        tilde = run("sub",
                    p["c_lm"] | (p["c_hm"] << off),
                    values["t_l"] | (values["t_h"] << off))
        values["~c_lm"] = tilde & mask(off)
        values["~c_hm"] = tilde >> off

        # Pass 3/4: the mm node (wider operands, runs alone).
        values["t_m"] = run("add", p["c_ml"], p["c_mh"])
        values["~c_mm"] = run("sub", p["c_mm"], values["t_m"])

        # Pass 5/6: c_l and c_h — appending is free, one addition each.
        values["c_l"] = run("add",
                            p["c_ll"] | (p["c_lh"] << half),
                            values["~c_lm"] << quarter)
        values["c_h"] = run("add",
                            p["c_hl"] | (p["c_hh"] << half),
                            values["~c_hm"] << quarter)

        # Pass 7/8: c_m needs two additions (c_ml is half+2 bits wide,
        # so (c_mh || c_ml) cannot be formed by appending).
        values["u_m"] = run("add", p["c_ml"], p["c_mh"] << half)
        values["c_m"] = run("add", values["u_m"], values["~c_mm"] << quarter)

        # Pass 9/10: the level-1 tilde value.
        values["t"] = run("add", values["c_l"], values["c_h"])
        values["~c_m"] = run("sub", values["c_m"], values["t"])

        # Pass 11: final addition on the top 1.5n bits only; the low
        # n/2 bits of c_l pass straight through to the result.
        top = run("add",
                  (values["c_l"] >> half) | (values["c_h"] << half),
                  values["~c_m"])
        product = (top << half) | (values["c_l"] & mask(half))
        ops = tuple(op for op, _, _ in passes)
        if ops != self.PASS_OPS:  # pragma: no cover - schedule invariant
            raise AssertionError(f"pass schedule drifted: {ops}")
        return passes, product

    def _power_up(self, adder: KoggeStoneAdder) -> None:
        """Once per wear state: initialise scratch and sum rows."""
        state = self.leveler.swapped
        if state not in self._initialised_states:
            self.array.init_rows(adder.layout.scratch_rows)
            self.array.init_rows([adder.layout.out_row])
            self._initialised_states.add(state)

    def _mega_program(self) -> Tuple[Program, Dict[str, int], int]:
        """One full pass as a single replayable program for the
        *current* wear state: nine packed input WRITEs, eleven
        (stage x/y, adder pass, sense) rounds, and the closing data
        INIT.  The clock histogram covers only what the sequential path
        ticks — the adder programs plus the 18 cc reorder lump; operand
        staging and sensing ride inside that lump."""
        state = self.leveler.swapped
        if state not in self._mega:
            adder = self._adder()
            lay = adder.layout
            physical = self.leveler.physical_row
            builder = ProgramBuilder(label=f"postcompute-pass-{int(state)}")
            span = self.cols // 2
            for slot, name in enumerate(self._INPUT_NAMES):
                builder.write(
                    physical(slot // 2),
                    name,
                    col_offset=(slot % 2) * span,
                    width=min(span, self.cols - (slot % 2) * span),
                )
            hist: Dict[str, int] = {}
            cycles = REORDER_CYCLES
            for index, op in enumerate(self.PASS_OPS):
                builder.write(lay.x_row, f"x{index}", width=self.cols)
                builder.write(lay.y_row, f"y{index}", width=self.cols)
                program = adder.program(op, optimize=self.optimize)
                builder.concat(program)
                builder.read(lay.out_row, f"out{index}", width=self.cols)
                for opcode, cost in program.cycles_by_opcode().items():
                    hist[opcode] = hist.get(opcode, 0) + cost
                cycles += program.cycle_count
            builder.init([physical(r) for r in range(DATA_ROWS)])
            hist["reorder"] = REORDER_CYCLES
            self._mega[state] = (builder.build(), hist, cycles)
        return self._mega[state]

    def process_batch(
        self, products_list: List[Dict[str, int]]
    ) -> List[PostcomputeResult]:
        """Run B postcomputation passes in one SIMD sweep per wear state.

        Same contract as the precompute stage's batch path: jobs are
        grouped by sequential wear-state parity, each group replays the
        state's mega-program on a batched crossbar seeded at the steady
        all-ones state, every sensed pass result is asserted against the
        pure-integer plan, and per-lane writes/energy fold back into the
        stage array bit-identically to :meth:`process` per job.
        """
        products_list = list(products_list)
        if not products_list:
            return []
        required = set(self._INPUT_NAMES)
        plans = []
        for products in products_list:
            missing = required - products.keys()
            if missing:
                raise DesignError(f"missing partial products: {sorted(missing)}")
            plans.append(self._plan_passes(products))

        start_swaps = self.leveler.swaps
        if self.wear_leveling:
            groups = [
                [j for j in range(len(products_list)) if j % 2 == 0],
                [j for j in range(len(products_list)) if j % 2 == 1],
            ]
        else:
            groups = [list(range(len(products_list)))]

        span = self.cols // 2
        products_out: Dict[int, int] = {}
        cycles_per_job = 0
        for group_index, group in enumerate(groups):
            if not group:
                continue
            adder = self._adder()
            self._power_up(adder)
            program, hist, cycles_per_job = self._mega_program()
            bindings = []
            for j in group:
                passes, _ = plans[j]
                values: Dict[str, int] = {}
                for slot, name in enumerate(self._INPUT_NAMES):
                    width = min(span, self.cols - (slot % 2) * span)
                    value = products_list[j][name]
                    if value >> width:
                        raise DesignError(f"product {name} does not fit its slot")
                    values[name] = value
                for index, (_, x, y) in enumerate(passes):
                    values[f"x{index}"] = x
                    values[f"y{index}"] = y
                bindings.append(values)

            batched = self.backend.make_array(self.array, len(group))
            batched.reset_to_ones()
            batched.repin_faults()
            executor = self.backend.make_executor(
                batched, clock=Clock(), fault_hook=self.executor.fault_hook
            )
            # Compile once per wear state via the stage's persistent
            # cache; each batch replays the compiled program.
            stats = executor.execute(self.executor.compile(program), bindings)

            for lane, j in enumerate(group):
                passes, product = plans[j]
                for index, (op, x, y) in enumerate(passes):
                    sensed = stats[lane].results[f"out{index}"]
                    self._check_pass(sensed, op, x, y, f"pass-{index + 1}")
                products_out[j] = product

            self.array.writes += batched.writes * len(group)
            self.array.energy_fj += float(batched.energy_fj.sum())
            self.array.state[:] = True
            for opcode, cost in hist.items():
                self.clock.tick(cost, category=opcode)
            self.passes += len(group)
            if self.wear_leveling and group_index + 1 < len(groups):
                self.leveler.swap()

        if self.wear_leveling:
            self.leveler.advance(
                start_swaps + len(products_list) - self.leveler.swaps
            )
        return [
            PostcomputeResult(product=products_out[j], cycles=cycles_per_job)
            for j in range(len(products_list))
        ]

    # ------------------------------------------------------------------
    def _run(
        self, adder: KoggeStoneAdder, op: str, x: int, y: int, location: str
    ) -> int:
        """Stage operands, execute one full-width pass, sense the result."""
        # Operands may use all 1.5n columns (including the carry column)
        # when the result itself has no carry-out — the case of the
        # final top-bits addition, whose sum is < 2^(1.5n) by design.
        if x >> self.cols or y >> self.cols:
            raise DesignError("postcompute operand exceeds the adder window")
        if op == "sub" and y > x:
            raise DesignError("postcompute subtraction went negative")
        if op == "add" and (x + y) >> self.cols:
            raise DesignError("postcompute addition would overflow the window")
        lay = adder.layout
        self.array.write_row(lay.x_row, int_to_bits(x, self.cols))
        self.array.write_row(lay.y_row, int_to_bits(y, self.cols))
        self.executor.execute(adder.program(op, optimize=self.optimize))
        word = self.array.read_row(lay.out_row)
        value = 0
        for i in range(self.cols):
            if word[i]:
                value |= 1 << i
        self._check_pass(value, op, x, y, location)
        return value

    def _check_pass(
        self, sensed: int, op: str, x: int, y: int, location: str
    ) -> None:
        """Verify one sensed combine-step result: residue code first
        (in-band, from operand residues), full differential second."""
        rx, ry = self.checker.res(x), self.checker.res(y)
        if op == "add":
            self.checker.check_sum(sensed, (rx, ry), location)
        else:
            self.checker.check_linear(sensed, ((rx, 1), (ry, -1)), location)
        expected = x + y if op == "add" else x - y
        if sensed != expected:
            raise StageSelfCheckError(
                f"postcompute {op} produced {sensed}, expected {expected}",
                stage="postcompute",
                check="differential",
                location=location,
            )

    def _store_inputs(self, products: Dict[str, int]) -> None:
        """Pack the nine products two-per-row into the data rows."""
        physical = self.leveler.physical_row
        span = self.cols // 2
        for slot, name in enumerate(self._INPUT_NAMES):
            row = physical(slot // 2)
            offset = (slot % 2) * span
            width = min(span, self.cols - offset)
            value = products[name]
            if value >> width:
                raise DesignError(f"product {name} does not fit its slot")
            self.array.write_row(
                row,
                _placed_bits(value, offset, width, self.cols),
                _span_mask(offset, width, self.cols),
            )

    # ------------------------------------------------------------------
    # Reliability hooks
    # ------------------------------------------------------------------
    @property
    def fault_hook(self):
        """Transient-fault injector driving this stage's executors."""
        return self.executor.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        self.executor.fault_hook = hook

    def diagnose_and_repair(self) -> List[int]:
        """Write-verify every logical row; remap failures onto spares.

        Same contract as the precompute stage's method: returns the
        remapped logical rows (empty for a transient upset) and leaves
        the array at the all-ones steady state for the replay.
        """
        faulty = self.array.find_faulty_rows()
        for row in faulty:
            self.array.remap_row(row)
        self.array.state[:] = True
        self.array.repin_faults()
        return faulty

    # ------------------------------------------------------------------
    @property
    def area_cells(self) -> int:
        return self.array.cells

    def latency_cc(self) -> int:
        if not self.optimize:
            return latency_cc(self.n_bits)
        adder = self._adder()
        return (
            sum(
                adder.program(op, optimize=True).cycle_count
                for op in self.PASS_OPS
            )
            + REORDER_CYCLES
        )

    def optimizer_stats(self) -> Dict[str, object]:
        """Aggregated cycle-packer savings over this stage's adder
        programs (``{"enabled": False}`` when the optimizer is off)."""
        if not self.optimize:
            return {"enabled": False}
        reports = []
        for adder in self._adders.values():
            reports.extend(adder.optimizer_reports.values())
        return summarize_reports(reports)

    def max_writes(self) -> int:
        return self.array.max_writes()


def _placed_bits(value: int, offset: int, width: int, cols: int):
    import numpy as np

    word = np.zeros(cols, dtype=bool)
    for i in range(width):
        word[offset + i] = bool((value >> i) & 1)
    return word


def _span_mask(offset: int, width: int, cols: int):
    import numpy as np

    span = np.zeros(cols, dtype=bool)
    span[offset : offset + width] = True
    return span
