"""Unrolled Karatsuba plan generation (paper Sec. III-C.2, Fig. 3).

For unroll depth ``L`` the operands are split into ``2**L`` chunks up
front and *all* precomputation additions of every recursion level are
merged into one uniform stage.  The key trick making this possible is
the **redundant chunk representation** of mid operands: the level-1 mid
operand ``a_m = a_h + a_l`` is never carry-normalised; instead its
chunks are the pairwise sums of the corresponding ``a_h``/``a_l``
chunks (e.g. ``a20 = a0 + a2``).  Chunk values may then exceed the
chunk width by a few bits, which is exactly why the paper's widest
precompute addition has ``n/2^L + L - 1``-bit inputs and its widest
partial multiplication has ``n/2^L + L``-bit operands.

The generated :class:`UnrolledPlan` is fully symbolic *and* executable:

* ``precompute_adds`` — every chunk addition, with exact input widths
  (10 / 38 / 130 additions for L = 2 / 3 / 4);
* ``multiplications`` — the ``3**L`` partial products with exact
  operand widths (the paper's 9 / 27 / 81);
* ``combine_nodes`` — the postcomputation tree, bottom-up, with shift
  amounts and appendability of each low product;
* :meth:`UnrolledPlan.evaluate` — executes the plan on concrete
  integers, giving a bit-exact reference for any depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arith.bitops import mask, split_chunks
from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class Operand:
    """A symbolic chunk value: a leaf chunk or a sum of leaf chunks.

    ``max_value`` bounds the chunk in redundant representation; the
    width follows from it (sums exceed the leaf chunk width).
    """

    name: str
    indices: Tuple[int, ...]
    max_value: int

    @property
    def width(self) -> int:
        return self.max_value.bit_length()


@dataclass(frozen=True)
class AddStep:
    """One precomputation addition ``out = lhs + rhs``."""

    out: str
    lhs: str
    rhs: str
    input_width: int
    output_width: int


@dataclass(frozen=True)
class MultStep:
    """One partial multiplication ``out = lhs * rhs``."""

    out: str
    lhs: str
    rhs: str
    operand_width: int
    product_width: int


@dataclass(frozen=True)
class CombineNode:
    """One postcomputation node combining three child products.

    ``result = low + (high << 2*shift_bits)
             + ((mid - low - high) << shift_bits)``

    ``appendable`` records whether ``low`` fits in ``2*shift_bits`` so
    that ``low`` and ``high`` concatenate without an addition — true
    for non-redundant (carry-free) children, false on 'm' paths where
    products are a few bits wider (the paper's c_ml case).
    """

    path: str
    low: str
    high: str
    mid: str
    out: str
    shift_bits: int
    result_width: int
    appendable: bool
    level: int


@dataclass
class UnrolledPlan:
    """Complete symbolic schedule of one depth-L unrolled multiplication."""

    n_bits: int
    depth: int
    chunk_bits: int
    operands: Dict[str, Operand] = field(default_factory=dict)
    precompute_adds: List[AddStep] = field(default_factory=list)
    multiplications: List[MultStep] = field(default_factory=list)
    combine_nodes: List[CombineNode] = field(default_factory=list)
    product_widths: Dict[str, int] = field(default_factory=dict)

    # -- aggregate properties the paper quotes ------------------------
    @property
    def num_chunks(self) -> int:
        return 1 << self.depth

    @property
    def max_precompute_input_width(self) -> int:
        """Widest precompute addition input: ``n/2^L + L - 1`` bits."""
        return max(step.input_width for step in self.precompute_adds)

    @property
    def min_precompute_input_width(self) -> int:
        return min(step.input_width for step in self.precompute_adds)

    @property
    def max_mult_width(self) -> int:
        """Widest partial multiplication operand: ``n/2^L + L`` bits."""
        return max(step.operand_width for step in self.multiplications)

    @property
    def max_product_width(self) -> int:
        return max(step.product_width for step in self.multiplications)

    # -- execution -----------------------------------------------------
    def evaluate(self, a: int, b: int) -> int:
        """Execute the plan on concrete operands (bit-exact reference)."""
        if a >> self.n_bits or b >> self.n_bits or a < 0 or b < 0:
            raise DesignError(f"operands must fit in {self.n_bits} bits")
        values: Dict[str, int] = {}
        for prefix, operand in (("a", a), ("b", b)):
            for i, chunk in enumerate(
                split_chunks(operand, self.chunk_bits, self.num_chunks)
            ):
                values[f"{prefix}{i}"] = chunk
        for step in self.precompute_adds:
            values[step.out] = values[step.lhs] + values[step.rhs]
        for step in self.multiplications:
            values[step.out] = values[step.lhs] * values[step.rhs]
        for node in self.combine_nodes:  # already bottom-up
            low, high, mid = values[node.low], values[node.high], values[node.mid]
            values[node.out] = (
                low + (high << (2 * node.shift_bits))
                + ((mid - low - high) << node.shift_bits)
            )
        return values[self.combine_nodes[-1].out]

    def intermediate_values(self, a: int, b: int) -> Dict[str, int]:
        """Like :meth:`evaluate` but returning every named value (used
        by the stage implementations to cross-check their layouts)."""
        values: Dict[str, int] = {}
        for prefix, operand in (("a", a), ("b", b)):
            for i, chunk in enumerate(
                split_chunks(operand, self.chunk_bits, self.num_chunks)
            ):
                values[f"{prefix}{i}"] = chunk
        for step in self.precompute_adds:
            values[step.out] = values[step.lhs] + values[step.rhs]
        for step in self.multiplications:
            values[step.out] = values[step.lhs] * values[step.rhs]
        for node in self.combine_nodes:
            low, high, mid = values[node.low], values[node.high], values[node.mid]
            values[node.out] = (
                low + (high << (2 * node.shift_bits))
                + ((mid - low - high) << node.shift_bits)
            )
        return values


def _merge_name(prefix: str, indices: Tuple[int, ...], compact: bool) -> str:
    """Symbolic operand name, e.g. ``a10`` for a0+a1 (paper style).

    Compact (separator-free) names are only unambiguous while chunk
    indices are single digits; deeper plans join with underscores
    (``a1_0``) to avoid collisions such as leaf ``a10`` vs sum a1+a0.
    """
    parts = [str(i) for i in sorted(indices, reverse=True)]
    return prefix + ("".join(parts) if compact else "_".join(parts))


def build_plan(n_bits: int, depth: int) -> UnrolledPlan:
    """Construct the depth-*depth* unrolled plan for *n_bits* operands.

    *n_bits* must be divisible by ``2**depth`` (the paper evaluates
    n = 64..384 with L = 2, all divisible).
    """
    if depth < 1:
        raise DesignError("unroll depth must be at least 1")
    if n_bits <= 0 or n_bits % (1 << depth):
        raise DesignError(
            f"n_bits must be a positive multiple of 2**{depth}, got {n_bits}"
        )
    chunk_bits = n_bits >> depth
    plan = UnrolledPlan(n_bits=n_bits, depth=depth, chunk_bits=chunk_bits)
    leaf_max = mask(chunk_bits)

    compact_names = plan.num_chunks <= 10

    def get_or_add(prefix: str, indices: Tuple[int, ...], max_value: int) -> str:
        name = _merge_name(prefix, indices, compact_names)
        if name not in plan.operands:
            plan.operands[name] = Operand(
                name=name, indices=indices, max_value=max_value
            )
        return name

    def make_mid(prefix: str, low: List[str], high: List[str]) -> List[str]:
        """Pairwise chunk sums, emitting one AddStep per pair."""
        mid: List[str] = []
        for lo_name, hi_name in zip(low, high):
            lo, hi = plan.operands[lo_name], plan.operands[hi_name]
            indices = tuple(sorted(set(lo.indices) | set(hi.indices)))
            out = get_or_add(prefix, indices, lo.max_value + hi.max_value)
            plan.precompute_adds.append(
                AddStep(
                    out=out,
                    lhs=lo_name,
                    rhs=hi_name,
                    input_width=max(lo.width, hi.width),
                    output_width=plan.operands[out].width,
                )
            )
            mid.append(out)
        return mid

    def descend(vec_a: List[str], vec_b: List[str], path: str, level: int) -> str:
        if len(vec_a) == 1:
            lhs, rhs = vec_a[0], vec_b[0]
            out = f"c_{path}" if path else "c"
            op_width = max(plan.operands[lhs].width, plan.operands[rhs].width)
            prod_max = plan.operands[lhs].max_value * plan.operands[rhs].max_value
            plan.multiplications.append(
                MultStep(
                    out=out,
                    lhs=lhs,
                    rhs=rhs,
                    operand_width=op_width,
                    product_width=prod_max.bit_length(),
                )
            )
            plan.product_widths[out] = prod_max.bit_length()
            return out
        half = len(vec_a) // 2
        a_low, a_high = vec_a[:half], vec_a[half:]
        b_low, b_high = vec_b[:half], vec_b[half:]
        a_mid = make_mid("a", a_low, a_high)
        b_mid = make_mid("b", b_low, b_high)
        low = descend(a_low, b_low, path + "l", level + 1)
        high = descend(a_high, b_high, path + "h", level + 1)
        mid = descend(a_mid, b_mid, path + "m", level + 1)
        shift_bits = half * chunk_bits
        low_width = plan.product_widths[low]
        out = f"c_{path}" if path else "c"
        node = CombineNode(
            path=path or "top",
            low=low,
            high=high,
            mid=mid,
            out=out,
            shift_bits=shift_bits,
            # value < (2^high_width) * 2^(2*shift), so this bounds it.
            result_width=2 * shift_bits + plan.product_widths[high],
            appendable=low_width <= 2 * shift_bits,
            level=level,
        )
        plan.combine_nodes.append(node)
        plan.product_widths[out] = node.result_width
        return out

    a_leaves = [
        get_or_add("a", (i,), leaf_max) for i in range(plan.num_chunks)
    ]
    b_leaves = [
        get_or_add("b", (i,), leaf_max) for i in range(plan.num_chunks)
    ]
    descend(a_leaves, b_leaves, "", 0)
    return plan
