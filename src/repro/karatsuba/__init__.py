"""The paper's core contribution: the CIM Karatsuba multiplier."""

from repro.karatsuba.alternatives import (
    AlternativeCost,
    recursive_multi_adder,
    recursive_shared_adder,
    shared_adder_utilization,
    toom3_cim,
)
from repro.karatsuba.alternatives import comparison as alternatives_comparison
from repro.karatsuba.bank import BankStreamResult, BankTiming, MultiplierBank
from repro.karatsuba.controller import JobRecord, KaratsubaController
from repro.karatsuba.cost import (
    DesignCost,
    StageCost,
    atp_sweep,
    design_cost,
    design_metrics,
    max_writes_per_cell,
    optimal_depth,
    postcompute_passes,
)
from repro.karatsuba.design import KaratsubaCimMultiplier, supported_widths
from repro.karatsuba import floorplan, generic
from repro.karatsuba.eventsim import (
    EventSimResult,
    JobTimeline,
    simulate_pipeline_events,
    simulate_uniform_pipeline,
    validates_closed_form,
)
from repro.karatsuba.reference import ReferenceMultiplier
from repro.karatsuba.multiply import MultiplicationStage
from repro.karatsuba.pipeline import KaratsubaPipeline, PipelineTiming, StreamResult
from repro.karatsuba.postcompute import PostcomputeStage
from repro.karatsuba.precompute import PrecomputeStage
from repro.karatsuba.unroll import UnrolledPlan, build_plan

__all__ = [
    "AlternativeCost",
    "BankStreamResult",
    "alternatives_comparison",
    "recursive_multi_adder",
    "recursive_shared_adder",
    "shared_adder_utilization",
    "toom3_cim",
    "BankTiming",
    "DesignCost",
    "MultiplierBank",
    "JobRecord",
    "KaratsubaCimMultiplier",
    "KaratsubaController",
    "KaratsubaPipeline",
    "EventSimResult",
    "floorplan",
    "generic",
    "JobTimeline",
    "ReferenceMultiplier",
    "simulate_pipeline_events",
    "simulate_uniform_pipeline",
    "validates_closed_form",
    "MultiplicationStage",
    "PipelineTiming",
    "PostcomputeStage",
    "PrecomputeStage",
    "StageCost",
    "StreamResult",
    "UnrolledPlan",
    "atp_sweep",
    "build_plan",
    "design_cost",
    "design_metrics",
    "max_writes_per_cell",
    "optimal_depth",
    "postcompute_passes",
    "supported_widths",
]
