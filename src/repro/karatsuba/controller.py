"""Karatsuba Multiplication Controller (paper Fig. 5, centre).

The controller owns the three stage subarrays, feeds input operands to
the precomputation stage, moves intermediate results across stage
boundaries, and stores the final product back to main memory.  It is
the only component that sees whole operands; each stage works purely on
named chunk values.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.arith.bitops import split_chunks
from repro.karatsuba.multiply import MultiplicationStage
from repro.karatsuba.postcompute import PostcomputeStage
from repro.karatsuba.precompute import PrecomputeStage
from repro.sim.exceptions import DesignError
from repro.telemetry import spans as _telemetry

#: Smallest multiplication the L = 2 design supports (the postcompute
#: batching layout needs n/4 >= 4).
MIN_BITS = 16


@dataclass(frozen=True)
class JobRecord:
    """Result and per-stage cycle counts of one multiplication job."""

    a: int
    b: int
    product: int
    precompute_cycles: int
    multiply_cycles: int
    postcompute_cycles: int

    @property
    def total_cycles(self) -> int:
        """Unpipelined latency of this job."""
        return (
            self.precompute_cycles
            + self.multiply_cycles
            + self.postcompute_cycles
        )


class KaratsubaController:
    """Drives one multiplication through the three-stage datapath."""

    def __init__(
        self,
        n_bits: int,
        wear_leveling: bool = True,
        device=None,
        spare_rows: int = 2,
        residue_bits: int = 8,
        optimize: bool = False,
        backend: object = "bitplane",
    ):
        if n_bits < MIN_BITS or n_bits % 4:
            raise DesignError(
                f"operand width must be a multiple of 4 and >= {MIN_BITS}, "
                f"got {n_bits}"
            )
        self.n_bits = n_bits
        #: Run stage adder programs through the SIMD cycle packer
        #: (:mod:`repro.magic.passes`).  Off by default so the datapath
        #: reproduces the paper's closed-form stage latencies.
        self.optimize = optimize
        #: Batched execution strategy shared by both MAGIC stages (the
        #: multiply stage is closed-form and takes no executor).  Any
        #: :mod:`repro.magic.backend` name; accounting is bit-identical
        #: across backends.
        self.backend = backend
        self.precompute = PrecomputeStage(
            n_bits,
            wear_leveling=wear_leveling,
            device=device,
            spare_rows=spare_rows,
            residue_bits=residue_bits,
            optimize=optimize,
            backend=backend,
        )
        self.multiply_stage = MultiplicationStage(
            n_bits, wear_leveling=wear_leveling, residue_bits=residue_bits
        )
        self.postcompute = PostcomputeStage(
            n_bits,
            wear_leveling=wear_leveling,
            device=device,
            spare_rows=spare_rows,
            residue_bits=residue_bits,
            optimize=optimize,
            backend=backend,
        )
        self.jobs = 0

    # ------------------------------------------------------------------
    def run_job(self, a: int, b: int) -> JobRecord:
        """Multiply two *n_bits*-wide operands through all three stages."""
        if a < 0 or b < 0:
            raise DesignError("operands must be non-negative")
        if a >> self.n_bits or b >> self.n_bits:
            raise DesignError(f"operands must fit in {self.n_bits} bits")
        chunk_bits = self.n_bits // 4
        tracer = _telemetry.active()
        if tracer is None:
            pre = self.precompute.process(
                split_chunks(a, chunk_bits, 4), split_chunks(b, chunk_bits, 4)
            )
            mul = self.multiply_stage.process(pre.chunk_sums)
            post = self.postcompute.process(mul.products)
        else:
            with self._stage_span(tracer, "precompute", self.precompute, 1):
                pre = self.precompute.process(
                    split_chunks(a, chunk_bits, 4),
                    split_chunks(b, chunk_bits, 4),
                )
            with self._stage_span(tracer, "multiply", self.multiply_stage, 1):
                mul = self.multiply_stage.process(pre.chunk_sums)
            with self._stage_span(tracer, "postcompute", self.postcompute, 1):
                post = self.postcompute.process(mul.products)
        self.jobs += 1
        return JobRecord(
            a=a,
            b=b,
            product=post.product,
            precompute_cycles=pre.cycles,
            multiply_cycles=mul.cycles,
            postcompute_cycles=post.cycles,
        )

    def run_jobs_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[JobRecord]:
        """Multiply a batch of operand pairs through all three stages.

        Every stage executes its whole batch in SIMD fashion (one
        compiled pass per wear state) instead of job-by-job, which is
        where the pipeline's throughput comes from.  Products, per-job
        cycle counts, wear counters and energy are bit-identical to
        calling :meth:`run_job` per pair; only the stage clocks differ,
        advancing once per lock-step pass rather than once per job.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        for a, b in pairs:
            if a < 0 or b < 0:
                raise DesignError("operands must be non-negative")
            if a >> self.n_bits or b >> self.n_bits:
                raise DesignError(f"operands must fit in {self.n_bits} bits")
        chunk_bits = self.n_bits // 4
        chunk_jobs = [
            (split_chunks(a, chunk_bits, 4), split_chunks(b, chunk_bits, 4))
            for a, b in pairs
        ]
        tracer = _telemetry.active()
        if tracer is None:
            pre = self.precompute.process_batch(chunk_jobs)
            mul = self.multiply_stage.process_batch([r.chunk_sums for r in pre])
            post = self.postcompute.process_batch([r.products for r in mul])
        else:
            jobs = len(pairs)
            with self._stage_span(tracer, "precompute", self.precompute, jobs):
                pre = self.precompute.process_batch(chunk_jobs)
            with self._stage_span(tracer, "multiply", self.multiply_stage, jobs):
                mul = self.multiply_stage.process_batch(
                    [r.chunk_sums for r in pre]
                )
            with self._stage_span(tracer, "postcompute", self.postcompute, jobs):
                post = self.postcompute.process_batch(
                    [r.products for r in mul]
                )
        self.jobs += len(pairs)
        return [
            JobRecord(
                a=a,
                b=b,
                product=post[i].product,
                precompute_cycles=pre[i].cycles,
                multiply_cycles=mul[i].cycles,
                postcompute_cycles=post[i].cycles,
            )
            for i, (a, b) in enumerate(pairs)
        ]

    # ------------------------------------------------------------------
    @contextmanager
    def _stage_span(self, tracer, name: str, stage, jobs: int):
        """One telemetry span per stage pass, timed on the stage clock.

        Carries the paper-facing accounting as attributes: operand
        width, SIMD job count, NOR cycles spent, and (for the crossbar
        stages) the array energy consumed by the pass.
        """
        array = getattr(stage, "array", None)
        energy_before = float(array.energy_fj) if array is not None else None
        nor_before = stage.clock.by_category.get("nor", 0)
        with tracer.span(
            f"stage.{name}", clock=stage.clock, width=self.n_bits, jobs=jobs
        ) as span:
            yield
            span.set(nor=stage.clock.by_category.get("nor", 0) - nor_before)
            if energy_before is not None:
                span.set(energy_fj=float(array.energy_fj) - energy_before)

    # ------------------------------------------------------------------
    def stage_latencies(self) -> Tuple[int, int, int]:
        """Static (precompute, multiply, postcompute) latencies in cc."""
        return (
            self.precompute.latency_cc(),
            self.multiply_stage.latency_cc(),
            self.postcompute.latency_cc(),
        )

    @property
    def area_cells(self) -> int:
        """Total memory cells across the three subarrays."""
        return (
            self.precompute.area_cells
            + self.multiply_stage.area_cells
            + self.postcompute.area_cells
        )

    def max_writes(self) -> int:
        """Hottest-cell write count across all subarrays so far."""
        return max(
            self.precompute.max_writes(),
            self.multiply_stage.max_writes(),
            self.postcompute.max_writes(),
        )

    def total_energy_fj(self) -> float:
        """Accumulated array energy across the crossbar stages, in fJ.

        Covers the precompute and postcompute subarrays (the row
        multipliers model wear but not device energy)."""
        return float(
            self.precompute.array.energy_fj + self.postcompute.array.energy_fj
        )

    # ------------------------------------------------------------------
    # Reliability
    # ------------------------------------------------------------------
    @property
    def fault_hook(self):
        """Transient-fault injector shared by the crossbar stages."""
        return self.precompute.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        self.precompute.fault_hook = hook
        self.postcompute.fault_hook = hook

    def diagnose_and_repair(self) -> dict:
        """Write-verify and remap every crossbar stage.

        Returns ``{stage: [remapped logical rows]}`` for the stages
        that own a crossbar (the multiplier rows are a numeric model).
        An empty mapping means the detected upset was transient and a
        plain replay suffices.
        """
        report = {}
        for name, stage in (
            ("precompute", self.precompute),
            ("postcompute", self.postcompute),
        ):
            remapped = stage.diagnose_and_repair()
            if remapped:
                report[name] = remapped
        return report

    def spare_rows_free(self) -> int:
        """Spare word lines still available across the crossbar stages."""
        return (
            self.precompute.array.spare_rows_free
            + self.postcompute.array.spare_rows_free
        )

    def optimizer_stats(self) -> dict:
        """Aggregated cycle-packer savings across the crossbar stages.

        ``{"enabled": False}`` when the optimizer is off; otherwise one
        additive summary per stage (pack factor, cycles saved per pass).
        """
        if not self.optimize:
            return {"enabled": False}
        return {
            "enabled": True,
            "precompute": self.precompute.optimizer_stats(),
            "postcompute": self.postcompute.optimizer_stats(),
        }

    def residue_stats(self) -> List[dict]:
        """Per-stage residue-checker statistics."""
        return [
            self.precompute.checker.stats(),
            self.multiply_stage.checker.stats(),
            self.postcompute.checker.stats(),
        ]
