"""Discrete-event validation of the three-stage pipeline model.

The pipeline timing used throughout the reproduction is a closed form
(fill latency + bottleneck interval per extra job).  This module runs
an explicit event-driven simulation of the three stages — each a
unit-capacity resource with its own latency, jobs flowing in order —
and exposes per-job timelines.  For identical jobs the simulated
makespan provably equals the closed form; for *heterogeneous* job
latencies (e.g. a stream mixing operand widths on a reconfigurable
datapath) only the event simulation is exact, which is why it exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class JobTimeline:
    """Entry/exit times of one job through the three stages."""

    job: int
    stage_entry: Tuple[int, int, int]
    stage_exit: Tuple[int, int, int]

    @property
    def completion(self) -> int:
        return self.stage_exit[2]

    @property
    def latency(self) -> int:
        return self.stage_exit[2] - self.stage_entry[0]


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one pipeline event simulation."""

    timelines: List[JobTimeline]

    @property
    def makespan_cc(self) -> int:
        return self.timelines[-1].completion if self.timelines else 0

    @property
    def initiation_intervals(self) -> List[int]:
        """Gaps between successive job completions (steady state =
        bottleneck latency)."""
        completions = [t.completion for t in self.timelines]
        return [b - a for a, b in zip(completions, completions[1:])]


def simulate(job_latencies: Sequence[Tuple[int, int, int]]) -> EventSimResult:
    """Flow jobs through three in-order, unit-capacity stages.

    *job_latencies* holds one (precompute, multiply, postcompute)
    triple per job.  A stage starts job i when (a) the stage has
    finished job i-1 and (b) the previous stage has delivered job i.
    """
    for triple in job_latencies:
        if len(triple) != 3 or any(t <= 0 for t in triple):
            raise DesignError(f"invalid stage latency triple {triple}")
    stage_free = [0, 0, 0]
    timelines: List[JobTimeline] = []
    for index, triple in enumerate(job_latencies):
        entries: List[int] = []
        exits: List[int] = []
        available = 0                     # operands ready at t = 0
        for stage, latency in enumerate(triple):
            start = max(available, stage_free[stage])
            end = start + latency
            stage_free[stage] = end
            entries.append(start)
            exits.append(end)
            available = end
        timelines.append(
            JobTimeline(
                job=index,
                stage_entry=tuple(entries),
                stage_exit=tuple(exits),
            )
        )
    return EventSimResult(timelines=timelines)


def simulate_uniform(
    stage_latencies: Tuple[int, int, int], jobs: int
) -> EventSimResult:
    """Identical jobs — the paper's operating point."""
    if jobs < 0:
        raise DesignError("job count must be non-negative")
    return simulate([stage_latencies] * jobs)


def validates_closed_form(
    stage_latencies: Tuple[int, int, int], jobs: int
) -> bool:
    """True when the event simulation reproduces the closed form
    ``sum(stages) + (jobs-1) * max(stages)``."""
    if jobs == 0:
        return True
    simulated = simulate_uniform(stage_latencies, jobs).makespan_cc
    closed = sum(stage_latencies) + (jobs - 1) * max(stage_latencies)
    return simulated == closed


#: Public aliases with unambiguous names for the package namespace.
simulate_pipeline_events = simulate
simulate_uniform_pipeline = simulate_uniform
