"""Cost models of the design alternatives the paper rejects.

Sec. III argues qualitatively against three alternatives; this module
prices them with the same stage models used for the chosen design so
the arguments become quantitative:

* **Recursive Karatsuba, multi-adder** (Sec. III-C.1 option *i*): one
  addition array per recursion level's operand width — extra area.
* **Recursive Karatsuba, shared adder** (option *ii*): one array of the
  largest width reused for all levels — underutilised columns and a
  longer critical path (every addition pays the widest adder's log
  depth).
* **Toom-3 CIM** (Sec. III-B): five pointwise row-multiplications of
  ~n/3-bit chunks, but an interpolation stage with 25 constant
  multiplications, several with fractional constants that need
  multi-pass shift-add/division sequences in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith import rowmul
from repro.arith.bitops import ceil_div, ceil_log2
from repro.arith.koggestone import SCRATCH_ROWS
from repro.karatsuba import cost
from repro.sim.exceptions import DesignError


@dataclass(frozen=True)
class AlternativeCost:
    """Area/latency of one rejected design alternative."""

    name: str
    n_bits: int
    area_cells: int
    bottleneck_cc: int
    note: str

    @property
    def throughput_per_mcc(self) -> float:
        return 1e6 / self.bottleneck_cc

    @property
    def atp(self) -> float:
        return self.area_cells / self.throughput_per_mcc

    def atp_penalty_vs_chosen(self) -> float:
        """ATP ratio against the paper's unrolled L = 2 design."""
        chosen = cost.design_cost(self.n_bits, 2).atp
        return self.atp / chosen


def _adder_array_cells(width: int) -> int:
    """Cells of one placed Kogge-Stone instance (operands + scratch)."""
    return (3 + SCRATCH_ROWS) * (width + 1)


def recursive_multi_adder(n_bits: int) -> AlternativeCost:
    """Option (i): dedicated addition arrays per recursion level.

    A depth-2 recursive tree needs n/2-bit adders (level 1) and
    n/4+1-bit adders (level 2), instantiated separately; the
    multiplication and postcompute stages match the chosen design.
    """
    _check(n_bits)
    chosen = cost.design_cost(n_bits, 2)
    level1 = _adder_array_cells(n_bits // 2)
    level2 = _adder_array_cells(n_bits // 4 + 1)
    # Input/result storage matches the unrolled stage.
    storage = (8 + 10) * (n_bits // 4 + 2)
    pre_area = level1 + level2 + storage
    # Latency: 2 wide adds at level 1, then 8 narrow adds at level 2
    # (data dependency: level-1 mids must finish first, Fig. 2).
    pre_latency = (
        8
        + 2 * cost.adder_latency_cc(n_bits // 2)
        + 8 * cost.adder_latency_cc(n_bits // 4 + 1)
        + 1
    )
    area = pre_area + chosen.multiply.area_cells + chosen.postcompute.area_cells
    bottleneck = max(
        pre_latency, chosen.multiply.latency_cc, chosen.postcompute.latency_cc
    )
    return AlternativeCost(
        name="recursive-multi-adder",
        n_bits=n_bits,
        area_cells=area,
        bottleneck_cc=bottleneck,
        note="one addition array per recursion level (Sec. III-C.1 i)",
    )


def recursive_shared_adder(n_bits: int) -> AlternativeCost:
    """Option (ii): a single n/2-bit adder array reused for all levels.

    Area matches one wide instance, but every addition — including the
    eight narrow level-2 ones — pays the n/2-bit prefix depth, and the
    narrow additions leave half the columns idle.
    """
    _check(n_bits)
    chosen = cost.design_cost(n_bits, 2)
    storage = (8 + 10) * (n_bits // 4 + 2)
    pre_area = _adder_array_cells(n_bits // 2) + storage
    wide_add = cost.adder_latency_cc(n_bits // 2)
    pre_latency = 8 + 10 * wide_add + 1
    area = pre_area + chosen.multiply.area_cells + chosen.postcompute.area_cells
    bottleneck = max(
        pre_latency, chosen.multiply.latency_cc, chosen.postcompute.latency_cc
    )
    return AlternativeCost(
        name="recursive-shared-adder",
        n_bits=n_bits,
        area_cells=area,
        bottleneck_cc=bottleneck,
        note="largest-width adder reused for all levels (Sec. III-C.1 ii)",
    )


def shared_adder_utilization(n_bits: int) -> float:
    """Average column utilisation of the shared n/2-bit adder across
    the ten additions of a depth-2 recursion (Sec. III-C.1's
    'underutilization of the array')."""
    _check(n_bits)
    wide = n_bits // 2 + 1
    # Two level-1 additions use the full width; eight level-2 ones use
    # n/4+2 of the wide columns.
    used = 2 * wide + 8 * (n_bits // 4 + 2)
    return used / (10 * wide)


#: Interpolation constants of Toom-3 with points {0, 1, -1, 2, inf}:
#: number of shift-add passes to multiply by each inverse-matrix entry
#: (fractional entries like 1/2 and 1/6 need iterative division in
#: memory, costed here as extra adder passes).
_TOOM3_CONST_PASSES = 2.5


def toom3_cim(n_bits: int) -> AlternativeCost:
    """A hypothetical Toom-3 CIM design priced with our stage models.

    Evaluation: 4 additions per operand over n/3-bit chunks (points
    1, -1, 2 from shifted adds).  Pointwise: 5 row multiplications of
    (n/3 + 2)-bit operands.  Interpolation: 25 constant multiplications
    (Sec. III-B), each ~2.5 full-width adder passes on a 2n-bit adder
    (fractional constants forbid the paper's cheap power-of-two-only
    path), plus recombination.
    """
    _check(n_bits)
    if n_bits % 3:
        chunk = ceil_div(n_bits, 3)
    else:
        chunk = n_bits // 3
    mult_width = chunk + 2
    eval_adds = 8
    eval_width = chunk + 2
    pre_area = (6 + 10 + SCRATCH_ROWS) * (eval_width + 1)
    pre_latency = 6 + eval_adds * cost.adder_latency_cc(eval_width) + 1

    mult_area = 5 * rowmul.area_cells(mult_width)
    mult_latency = rowmul.latency_cc(mult_width)

    post_width = 2 * n_bits
    interp_passes = round(25 * _TOOM3_CONST_PASSES)
    recombine_passes = 4
    post_area = (10 + SCRATCH_ROWS) * post_width
    post_latency = (
        (interp_passes + recombine_passes) * cost.adder_latency_cc(post_width)
        + 2 * 5
    )

    area = pre_area + mult_area + post_area
    bottleneck = max(pre_latency, mult_latency, post_latency)
    return AlternativeCost(
        name="toom3-cim",
        n_bits=n_bits,
        area_cells=area,
        bottleneck_cc=bottleneck,
        note="k=3 Toom-Cook with 25 interpolation constant mults (Sec. III-B)",
    )


def comparison(n_bits: int) -> list:
    """All alternatives plus the chosen design, ATP-sorted."""
    chosen = cost.design_cost(n_bits, 2)
    rows = [
        AlternativeCost(
            name="unrolled-L2 (chosen)",
            n_bits=n_bits,
            area_cells=chosen.area_cells,
            bottleneck_cc=chosen.bottleneck_cc,
            note="the paper's design",
        ),
        recursive_multi_adder(n_bits),
        recursive_shared_adder(n_bits),
        toom3_cim(n_bits),
    ]
    return sorted(rows, key=lambda r: r.atp)


def _check(n_bits: int) -> None:
    if n_bits < 16 or n_bits % 4:
        raise DesignError(
            f"alternatives need n divisible by 4 and >= 16, got {n_bits}"
        )
