"""Precomputation stage of the CIM Karatsuba multiplier (Sec. IV-C).

For the paper's L = 2 design the stage performs the ten chunk
additions of Fig. 3 on one ``(8 + 10 + 12) x (n/4 + 2)`` subarray:

* rows 0-7 hold the eight input chunks a0..a3, b0..b3;
* rows 8-17 receive the ten addition results;
* rows 18-29 are the Kogge-Stone scratch region.

A single Kogge-Stone instance of ``n/4 + 1``-bit width serves all ten
additions (eight have ``n/4``-bit inputs, the two deepest — a3210 and
b3210 — have ``n/4 + 1``-bit inputs), which is the uniformity payoff of
unrolling.  Stage latency:

    ``8 + 10 * (17 + 11*ceil(log2(n/4 + 1))) + 1``  cc

(8 input-row writes, ten adder passes, one reset cycle).

Wear-leveling exchanges the physical rows of the scratch region with
twelve of the data rows after every multiplication, halving the
per-cell write accumulation at zero cycle cost (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arith.bitops import ceil_log2
from repro.arith.koggestone import (
    SCRATCH_ROWS,
    KoggeStoneAdder,
    KoggeStoneLayout,
)
from repro.crossbar.array import CrossbarArray
from repro.crossbar.endurance import WearLevelingController
from repro.karatsuba.unroll import UnrolledPlan, build_plan
from repro.magic.executor import MagicExecutor, int_to_bits
from repro.sim.clock import Clock
from repro.sim.exceptions import DesignError

#: Row budget of the stage (paper: 8 inputs + 10 results + 12 scratch).
INPUT_ROWS = 8
RESULT_ROWS = 10
TOTAL_ROWS = INPUT_ROWS + RESULT_ROWS + SCRATCH_ROWS


def area_cells(n_bits: int) -> int:
    """Stage footprint: ``30 * (n/4 + 2)`` cells (1,980 at n = 256)."""
    _check_width(n_bits)
    return TOTAL_ROWS * (n_bits // 4 + 2)


def latency_cc(n_bits: int) -> int:
    """Stage latency: ``8 + 10*(17 + 11*ceil(log2(n/4+1))) + 1`` cc."""
    _check_width(n_bits)
    per_add = 17 + 11 * ceil_log2(n_bits // 4 + 1)
    return INPUT_ROWS + RESULT_ROWS * per_add + 1


def _check_width(n_bits: int) -> None:
    if n_bits < 8 or n_bits % 4:
        raise DesignError(
            f"the L=2 design needs n divisible by 4 and >= 8, got {n_bits}"
        )


@dataclass(frozen=True)
class PrecomputeResult:
    """Outputs of one precomputation pass."""

    chunk_sums: Dict[str, int]
    cycles: int


class PrecomputeStage:
    """Cycle-accurate precomputation subarray.

    The stage owns its crossbar, a wear-leveling controller, and one
    Kogge-Stone program per (operation, wear-state) pair.  Calling
    :meth:`process` writes the eight chunks, executes the ten additions
    NOR-by-NOR, resets, and returns every named chunk sum.
    """

    def __init__(self, n_bits: int, wear_leveling: bool = True, device=None):
        _check_width(n_bits)
        self.n_bits = n_bits
        self.cols = n_bits // 4 + 2
        self.adder_width = n_bits // 4 + 1
        self.array = CrossbarArray(TOTAL_ROWS, self.cols, device=device)
        self.clock = Clock()
        self.executor = MagicExecutor(self.array, clock=self.clock)
        self.plan: UnrolledPlan = build_plan(n_bits, 2)
        self.wear_leveling = wear_leveling
        # Swap the 12 scratch rows with the first 12 data rows; both
        # regions are rewritten from scratch every multiplication, so
        # the exchange is transparent to the dataflow.
        self.leveler = WearLevelingController(
            region_a=list(range(SCRATCH_ROWS)),
            region_b=list(range(INPUT_ROWS + RESULT_ROWS, TOTAL_ROWS)),
        )
        self._row_of = self._assign_rows()
        self._adders: Dict[Tuple[str, bool], List[Tuple[str, KoggeStoneAdder]]] = {}
        self._initialised_states = set()
        self.passes = 0

    # ------------------------------------------------------------------
    def _assign_rows(self) -> Dict[str, int]:
        """Logical row of every named operand (inputs then results)."""
        rows: Dict[str, int] = {}
        for i in range(4):
            rows[f"a{i}"] = i
            rows[f"b{i}"] = 4 + i
        for offset, step in enumerate(self.plan.precompute_adds):
            rows[step.out] = INPUT_ROWS + offset
        if len(rows) != INPUT_ROWS + RESULT_ROWS:
            raise AssertionError("unexpected L=2 precompute operand count")
        return rows

    def _scratch_rows(self) -> Tuple[int, ...]:
        rows = range(INPUT_ROWS + RESULT_ROWS, TOTAL_ROWS)
        return tuple(self.leveler.physical_row(r) for r in rows)

    def _adder_for(self, step) -> KoggeStoneAdder:
        """Adder program generator for one addition in the current
        wear state (programs are cached per state)."""
        key = (step.out, self.leveler.swapped)
        cache = self._adders.setdefault(key, [])
        if not cache:
            layout = KoggeStoneLayout(
                width=self.adder_width,
                col0=0,
                x_row=self.leveler.physical_row(self._row_of[step.lhs])
                if self._row_of[step.lhs] < SCRATCH_ROWS
                else self._row_of[step.lhs],
                y_row=self.leveler.physical_row(self._row_of[step.rhs])
                if self._row_of[step.rhs] < SCRATCH_ROWS
                else self._row_of[step.rhs],
                out_row=self.leveler.physical_row(self._row_of[step.out])
                if self._row_of[step.out] < SCRATCH_ROWS
                else self._row_of[step.out],
                scratch_rows=self._scratch_rows(),
            )
            cache.append(("adder", KoggeStoneAdder(layout)))
        return cache[0][1]

    def _physical(self, logical_row: int) -> int:
        if logical_row < SCRATCH_ROWS:
            return self.leveler.physical_row(logical_row)
        return logical_row

    # ------------------------------------------------------------------
    def process(self, a_chunks: List[int], b_chunks: List[int]) -> PrecomputeResult:
        """Run one precomputation pass over the eight input chunks."""
        if len(a_chunks) != 4 or len(b_chunks) != 4:
            raise DesignError("L=2 precompute expects 4 chunks per operand")
        chunk_bits = self.n_bits // 4
        for chunk in (*a_chunks, *b_chunks):
            if chunk >> chunk_bits:
                raise DesignError(f"chunk {chunk} exceeds {chunk_bits} bits")
        start = self.clock.cycles

        state = self.leveler.swapped
        if state not in self._initialised_states:
            # Power-up: both wear states initialise their scratch region
            # (and the result rows, which double as adder outputs) once.
            self.array.init_rows(self._scratch_rows())
            self.array.init_rows(
                [self._physical(r) for r in range(INPUT_ROWS, INPUT_ROWS + RESULT_ROWS)]
            )
            self._initialised_states.add(state)

        # (i) write the eight input chunks: one cycle per row.
        inputs = {f"a{i}": a_chunks[i] for i in range(4)}
        inputs.update({f"b{i}": b_chunks[i] for i in range(4)})
        for name, value in inputs.items():
            row = self._physical(self._row_of[name])
            self.array.write_row(row, int_to_bits(value, self.cols))
            self.clock.tick(1, category="write")

        # (ii) the ten Kogge-Stone additions.
        results: Dict[str, int] = dict(inputs)
        for step in self.plan.precompute_adds:
            adder = self._adder_for(step)
            self.executor.execute(adder.program("add"))
            results[step.out] = self._read_result(adder)
            expected = results[step.lhs] + results[step.rhs]
            if results[step.out] != expected:
                raise AssertionError(
                    f"precompute addition {step.out} produced "
                    f"{results[step.out]}, expected {expected}"
                )

        # (iii) reset the whole data region (inputs and results) for the
        # next pass in one multi-row INIT cycle; the adder already reset
        # its own scratch region.  Covering the input rows matters under
        # wear-leveling: after the swap they become the scratch region
        # and must arrive at logic one.
        self.array.init_rows(
            [self._physical(r) for r in range(INPUT_ROWS + RESULT_ROWS)]
        )
        self.clock.tick(1, category="init")

        if self.wear_leveling:
            self.leveler.swap()
        self.passes += 1
        return PrecomputeResult(
            chunk_sums=results, cycles=self.clock.cycles - start
        )

    def _read_result(self, adder: KoggeStoneAdder) -> int:
        """Sense the sum row (periphery transfer to the next stage; the
        transfer cost is accounted by the pipeline controller)."""
        word = self.array.read_row(adder.layout.out_row)
        value = 0
        for i in range(self.cols):
            if word[i]:
                value |= 1 << i
        return value

    # ------------------------------------------------------------------
    @property
    def area_cells(self) -> int:
        return self.array.cells

    def latency_cc(self) -> int:
        return latency_cc(self.n_bits)

    def max_writes(self) -> int:
        return self.array.max_writes()
