"""Precomputation stage of the CIM Karatsuba multiplier (Sec. IV-C).

For the paper's L = 2 design the stage performs the ten chunk
additions of Fig. 3 on one ``(8 + 10 + 12) x (n/4 + 2)`` subarray:

* rows 0-7 hold the eight input chunks a0..a3, b0..b3;
* rows 8-17 receive the ten addition results;
* rows 18-29 are the Kogge-Stone scratch region.

A single Kogge-Stone instance of ``n/4 + 1``-bit width serves all ten
additions (eight have ``n/4``-bit inputs, the two deepest — a3210 and
b3210 — have ``n/4 + 1``-bit inputs), which is the uniformity payoff of
unrolling.  Stage latency:

    ``8 + 10 * (17 + 11*ceil(log2(n/4 + 1))) + 1``  cc

(8 input-row writes, ten adder passes, one reset cycle).

Wear-leveling exchanges the physical rows of the scratch region with
twelve of the data rows after every multiplication, halving the
per-cell write accumulation at zero cycle cost (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arith.bitops import ceil_log2
from repro.arith.koggestone import (
    SCRATCH_ROWS,
    KoggeStoneAdder,
    KoggeStoneLayout,
)
from repro.crossbar.array import CrossbarArray
from repro.magic.backend import get_backend
from repro.crossbar.endurance import WearLevelingController
from repro.karatsuba.unroll import UnrolledPlan, build_plan
from repro.magic.executor import MagicExecutor, int_to_bits
from repro.magic.passes import summarize_reports
from repro.magic.program import Program, ProgramBuilder
from repro.reliability.residue import DEFAULT_RESIDUE_BITS, ResidueChecker
from repro.sim.clock import Clock
from repro.sim.exceptions import DesignError, StageSelfCheckError

#: Row budget of the stage (paper: 8 inputs + 10 results + 12 scratch).
INPUT_ROWS = 8
RESULT_ROWS = 10
TOTAL_ROWS = INPUT_ROWS + RESULT_ROWS + SCRATCH_ROWS

#: Redundant word lines per stage subarray for fault remapping.
DEFAULT_SPARE_ROWS = 2


def area_cells(n_bits: int) -> int:
    """Stage footprint: ``30 * (n/4 + 2)`` cells (1,980 at n = 256)."""
    _check_width(n_bits)
    return TOTAL_ROWS * (n_bits // 4 + 2)


def latency_cc(n_bits: int) -> int:
    """Stage latency: ``8 + 10*(17 + 11*ceil(log2(n/4+1))) + 1`` cc."""
    _check_width(n_bits)
    per_add = 17 + 11 * ceil_log2(n_bits // 4 + 1)
    return INPUT_ROWS + RESULT_ROWS * per_add + 1


def _check_width(n_bits: int) -> None:
    if n_bits < 8 or n_bits % 4:
        raise DesignError(
            f"the L=2 design needs n divisible by 4 and >= 8, got {n_bits}"
        )


@dataclass(frozen=True)
class PrecomputeResult:
    """Outputs of one precomputation pass."""

    chunk_sums: Dict[str, int]
    cycles: int


class PrecomputeStage:
    """Cycle-accurate precomputation subarray.

    The stage owns its crossbar, a wear-leveling controller, and one
    Kogge-Stone program per (operation, wear-state) pair.  Calling
    :meth:`process` writes the eight chunks, executes the ten additions
    NOR-by-NOR, resets, and returns every named chunk sum.
    """

    def __init__(
        self,
        n_bits: int,
        wear_leveling: bool = True,
        device=None,
        spare_rows: int = DEFAULT_SPARE_ROWS,
        residue_bits: int = DEFAULT_RESIDUE_BITS,
        optimize: bool = False,
        backend: object = "bitplane",
    ):
        _check_width(n_bits)
        self.n_bits = n_bits
        #: Run adder programs through the SIMD cycle packer
        #: (:mod:`repro.magic.passes`).  Off by default so the stage
        #: reproduces the paper's per-op cycle counts exactly.
        self.optimize = optimize
        #: Batched execution strategy (see :mod:`repro.magic.backend`).
        #: Per-lane results and accounting are bit-identical across
        #: backends; defaults to the historical bit-plane path.
        self.backend = get_backend(backend)
        self.cols = n_bits // 4 + 2
        self.adder_width = n_bits // 4 + 1
        self.array = CrossbarArray(
            TOTAL_ROWS, self.cols, device=device, spare_rows=spare_rows
        )
        self.checker = ResidueChecker("precompute", residue_bits)
        self.clock = Clock()
        self.executor = MagicExecutor(self.array, clock=self.clock)
        self.plan: UnrolledPlan = build_plan(n_bits, 2)
        self.wear_leveling = wear_leveling
        # Swap the 12 scratch rows with the first 12 data rows; both
        # regions are rewritten from scratch every multiplication, so
        # the exchange is transparent to the dataflow.
        self.leveler = WearLevelingController(
            region_a=list(range(SCRATCH_ROWS)),
            region_b=list(range(INPUT_ROWS + RESULT_ROWS, TOTAL_ROWS)),
        )
        self._row_of = self._assign_rows()
        self._adders: Dict[Tuple[str, bool], List[Tuple[str, KoggeStoneAdder]]] = {}
        self._initialised_states = set()
        #: Per wear state: (mega program, clock histogram, cycles/job).
        self._mega: Dict[bool, Tuple[Program, Dict[str, int], int]] = {}
        self.passes = 0

    # ------------------------------------------------------------------
    def _assign_rows(self) -> Dict[str, int]:
        """Logical row of every named operand (inputs then results)."""
        rows: Dict[str, int] = {}
        for i in range(4):
            rows[f"a{i}"] = i
            rows[f"b{i}"] = 4 + i
        for offset, step in enumerate(self.plan.precompute_adds):
            rows[step.out] = INPUT_ROWS + offset
        if len(rows) != INPUT_ROWS + RESULT_ROWS:
            raise AssertionError("unexpected L=2 precompute operand count")
        return rows

    def _scratch_rows(self) -> Tuple[int, ...]:
        rows = range(INPUT_ROWS + RESULT_ROWS, TOTAL_ROWS)
        return tuple(self.leveler.physical_row(r) for r in rows)

    def _adder_for(self, step) -> KoggeStoneAdder:
        """Adder program generator for one addition in the current
        wear state (programs are cached per state)."""
        key = (step.out, self.leveler.swapped)
        cache = self._adders.setdefault(key, [])
        if not cache:
            layout = KoggeStoneLayout(
                width=self.adder_width,
                col0=0,
                x_row=self.leveler.physical_row(self._row_of[step.lhs])
                if self._row_of[step.lhs] < SCRATCH_ROWS
                else self._row_of[step.lhs],
                y_row=self.leveler.physical_row(self._row_of[step.rhs])
                if self._row_of[step.rhs] < SCRATCH_ROWS
                else self._row_of[step.rhs],
                out_row=self.leveler.physical_row(self._row_of[step.out])
                if self._row_of[step.out] < SCRATCH_ROWS
                else self._row_of[step.out],
                scratch_rows=self._scratch_rows(),
            )
            cache.append(("adder", KoggeStoneAdder(layout)))
        return cache[0][1]

    def _physical(self, logical_row: int) -> int:
        if logical_row < SCRATCH_ROWS:
            return self.leveler.physical_row(logical_row)
        return logical_row

    # ------------------------------------------------------------------
    def process(self, a_chunks: List[int], b_chunks: List[int]) -> PrecomputeResult:
        """Run one precomputation pass over the eight input chunks."""
        if len(a_chunks) != 4 or len(b_chunks) != 4:
            raise DesignError("L=2 precompute expects 4 chunks per operand")
        chunk_bits = self.n_bits // 4
        for chunk in (*a_chunks, *b_chunks):
            if chunk >> chunk_bits:
                raise DesignError(f"chunk {chunk} exceeds {chunk_bits} bits")
        start = self.clock.cycles
        self._power_up()

        # (i) write the eight input chunks: one cycle per row.
        inputs = {f"a{i}": a_chunks[i] for i in range(4)}
        inputs.update({f"b{i}": b_chunks[i] for i in range(4)})
        for name, value in inputs.items():
            row = self._physical(self._row_of[name])
            self.array.write_row(row, int_to_bits(value, self.cols))
            self.clock.tick(1, category="write")

        # (ii) the ten Kogge-Stone additions.  Each sensed sum is
        # verified twice: the in-band residue code first (what the
        # hardware periphery would check), then the full-width
        # differential plan as defence-in-depth.
        results: Dict[str, int] = dict(inputs)
        residues = {
            name: self.checker.res(value) for name, value in inputs.items()
        }
        for step in self.plan.precompute_adds:
            adder = self._adder_for(step)
            self.executor.execute(adder.program("add", optimize=self.optimize))
            sensed = self._read_result(adder)
            results[step.out] = sensed
            residues[step.out] = self.checker.check_sum(
                sensed, (residues[step.lhs], residues[step.rhs]), step.out
            )
            expected = results[step.lhs] + results[step.rhs]
            if sensed != expected:
                raise StageSelfCheckError(
                    f"precompute addition {step.out} produced "
                    f"{sensed}, expected {expected}",
                    stage="precompute",
                    check="differential",
                    location=step.out,
                )

        # (iii) reset the whole data region (inputs and results) for the
        # next pass in one multi-row INIT cycle; the adder already reset
        # its own scratch region.  Covering the input rows matters under
        # wear-leveling: after the swap they become the scratch region
        # and must arrive at logic one.
        self.array.init_rows(
            [self._physical(r) for r in range(INPUT_ROWS + RESULT_ROWS)]
        )
        self.clock.tick(1, category="init")

        if self.wear_leveling:
            self.leveler.swap()
        self.passes += 1
        return PrecomputeResult(
            chunk_sums=results, cycles=self.clock.cycles - start
        )

    def _power_up(self) -> None:
        """Once per wear state: initialise the scratch region (and the
        result rows, which double as adder outputs) out-of-band."""
        state = self.leveler.swapped
        if state not in self._initialised_states:
            self.array.init_rows(self._scratch_rows())
            self.array.init_rows(
                [self._physical(r) for r in range(INPUT_ROWS, INPUT_ROWS + RESULT_ROWS)]
            )
            self._initialised_states.add(state)

    # ------------------------------------------------------------------
    _INPUT_NAMES = tuple(f"a{i}" for i in range(4)) + tuple(
        f"b{i}" for i in range(4)
    )

    def _mega_program(self) -> Tuple[Program, Dict[str, int], int]:
        """One full pass as a single replayable program, for the
        *current* wear state: eight operand WRITEs, ten adder passes
        each followed by a result READ, and the closing data-region
        INIT.  Returns ``(program, clock histogram, cycles per job)``;
        the histogram covers exactly what the sequential path ticks
        (the READs are periphery transfers the stage never charges)."""
        state = self.leveler.swapped
        if state not in self._mega:
            builder = ProgramBuilder(label=f"precompute-pass-{int(state)}")
            hist: Dict[str, int] = {"write": INPUT_ROWS}
            cycles = INPUT_ROWS + 1
            for name in self._INPUT_NAMES:
                builder.write(
                    self._physical(self._row_of[name]), name, width=self.cols
                )
            for step in self.plan.precompute_adds:
                adder = self._adder_for(step)
                program = adder.program("add", optimize=self.optimize)
                builder.concat(program)
                builder.read(adder.layout.out_row, step.out, width=self.cols)
                for opcode, cost in program.cycles_by_opcode().items():
                    hist[opcode] = hist.get(opcode, 0) + cost
                cycles += program.cycle_count
            builder.init(
                [self._physical(r) for r in range(INPUT_ROWS + RESULT_ROWS)]
            )
            hist["init"] = hist.get("init", 0) + 1
            self._mega[state] = (builder.build(), hist, cycles)
        return self._mega[state]

    def process_batch(
        self, jobs: List[Tuple[List[int], List[int]]]
    ) -> List[PrecomputeResult]:
        """Run B precomputation passes in one SIMD sweep per wear state.

        Jobs are grouped by the wear state they would execute under in
        sequential order (the leveler alternates per multiplication),
        each group replays the state's mega-program over a
        ``(K, rows, cols)`` batched crossbar seeded at the steady all-
        ones state, and the per-lane writes/energy are folded back into
        this stage's array — bit-identical counters and results to
        calling :meth:`process` per job.  The stage clock advances by
        one pass per group (lanes run in lock-step).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        chunk_bits = self.n_bits // 4
        for a_chunks, b_chunks in jobs:
            if len(a_chunks) != 4 or len(b_chunks) != 4:
                raise DesignError("L=2 precompute expects 4 chunks per operand")
            for chunk in (*a_chunks, *b_chunks):
                if chunk >> chunk_bits:
                    raise DesignError(f"chunk {chunk} exceeds {chunk_bits} bits")

        start_swaps = self.leveler.swaps
        initial = self.leveler.swapped
        if self.wear_leveling:
            groups = [
                [j for j in range(len(jobs)) if j % 2 == 0],
                [j for j in range(len(jobs)) if j % 2 == 1],
            ]
        else:
            groups = [list(range(len(jobs)))]

        all_sums: Dict[int, Dict[str, int]] = {}
        cycles_per_job = 0
        for group_index, group in enumerate(groups):
            if not group:
                continue
            if self.wear_leveling and self.leveler.swapped != (
                initial if group_index == 0 else not initial
            ):
                raise AssertionError("wear-state grouping out of sync")
            self._power_up()
            program, hist, cycles_per_job = self._mega_program()
            bindings = []
            for j in group:
                a_chunks, b_chunks = jobs[j]
                values = {f"a{i}": a_chunks[i] for i in range(4)}
                values.update({f"b{i}": b_chunks[i] for i in range(4)})
                bindings.append(values)

            batched = self.backend.make_array(self.array, len(group))
            # Steady state: every pass ends with the whole subarray at
            # logic one (closing data INIT + the adder's scratch reset).
            batched.reset_to_ones()
            batched.repin_faults()
            executor = self.backend.make_executor(
                batched, clock=Clock(), fault_hook=self.executor.fault_hook
            )
            # Compile through the stage's persistent cache: one compile
            # per wear state for the stage's lifetime, replayed by every
            # batch (the batched executor itself is per-call).
            stats = executor.execute(self.executor.compile(program), bindings)

            for lane, j in enumerate(group):
                results = dict(bindings[lane])
                results.update(stats[lane].results)
                residues = {
                    name: self.checker.res(value)
                    for name, value in bindings[lane].items()
                }
                for step in self.plan.precompute_adds:
                    sensed = results[step.out]
                    residues[step.out] = self.checker.check_sum(
                        sensed,
                        (residues[step.lhs], residues[step.rhs]),
                        step.out,
                    )
                    expected = results[step.lhs] + results[step.rhs]
                    if sensed != expected:
                        raise StageSelfCheckError(
                            f"precompute addition {step.out} produced "
                            f"{sensed}, expected {expected}",
                            stage="precompute",
                            check="differential",
                            location=step.out,
                        )
                all_sums[j] = results

            # Fold the batch back into the persistent array: each lane
            # experienced the same write pulses, energy is per-lane.
            self.array.writes += batched.writes * len(group)
            self.array.energy_fj += float(batched.energy_fj.sum())
            self.array.state[:] = True
            for opcode, cost in hist.items():
                self.clock.tick(cost, category=opcode)
            self.passes += len(group)
            if self.wear_leveling and group_index + 1 < len(groups):
                self.leveler.swap()

        if self.wear_leveling:
            self.leveler.advance(start_swaps + len(jobs) - self.leveler.swaps)
        return [
            PrecomputeResult(chunk_sums=all_sums[j], cycles=cycles_per_job)
            for j in range(len(jobs))
        ]

    def _read_result(self, adder: KoggeStoneAdder) -> int:
        """Sense the sum row (periphery transfer to the next stage; the
        transfer cost is accounted by the pipeline controller)."""
        word = self.array.read_row(adder.layout.out_row)
        value = 0
        for i in range(self.cols):
            if word[i]:
                value |= 1 << i
        return value

    # ------------------------------------------------------------------
    # Reliability hooks
    # ------------------------------------------------------------------
    @property
    def fault_hook(self):
        """Transient-fault injector driving this stage's executors."""
        return self.executor.fault_hook

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        self.executor.fault_hook = hook

    def diagnose_and_repair(self) -> List[int]:
        """Write-verify every logical row; remap the failures onto spares.

        Run after a self-check fired: the march test localises rows
        with permanent write failures (an empty result means the upset
        was transient — replaying without remap suffices).  The data
        region is left at the all-ones steady state, ready for the
        replay.  Raises
        :class:`~repro.sim.exceptions.SpareRowsExhaustedError` when
        more rows fail than spares remain.
        """
        faulty = self.array.find_faulty_rows()
        for row in faulty:
            self.array.remap_row(row)
        self.array.state[:] = True
        self.array.repin_faults()
        return faulty

    # ------------------------------------------------------------------
    @property
    def area_cells(self) -> int:
        return self.array.cells

    def latency_cc(self) -> int:
        """Per-job stage latency.  The paper's closed form by default;
        with the optimizer on, the measured cycle count of the packed
        adder programs (8 input writes + 10 adds + 1 reset)."""
        if not self.optimize:
            return latency_cc(self.n_bits)
        total = INPUT_ROWS + 1
        for step in self.plan.precompute_adds:
            adder = self._adder_for(step)
            total += adder.program("add", optimize=True).cycle_count
        return total

    def optimizer_stats(self) -> Dict[str, object]:
        """Aggregated cycle-packer report over this stage's adder
        programs (per job): before/after cycles, savings per pass, and
        the achieved pack factor (micro-ops retired per issued cycle)."""
        if not self.optimize:
            return {"enabled": False}
        reports = []
        for step in self.plan.precompute_adds:
            adder = self._adder_for(step)
            adder.program("add", optimize=True)
            reports.append(adder.optimizer_reports["add"])
        return summarize_reports(reports)

    def max_writes(self) -> int:
        return self.array.max_writes()
