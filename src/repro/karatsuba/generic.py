"""Generic-depth CIM Karatsuba multiplier (any unroll depth L).

The paper ships L = 2 (`repro.karatsuba.design`); Fig. 4's sweep prices
the other depths analytically.  This module *instantiates* the design
at any depth, executing every addition, subtraction and recombination
NOR-by-NOR so the Fig. 4 trade-off can also be demonstrated
functionally:

* precompute: one Kogge-Stone instance of the widest chunk-sum width
  runs the plan's ``2(3^L - 2^L)`` additions in dependency order;
* multiply: ``3^L`` row multipliers of width ``n/2^L + L`` in
  lock-step;
* postcompute: the combine tree bottom-up on a 1.5n-bit Kogge-Stone,
  one pass per operation (unbatched — the hand-batched 11-pass schedule
  is the L = 2 specialisation in `repro.karatsuba.postcompute`), with
  the top-level LSB pass-through.

Latency is measured from the executed programs, not assumed, which
gives an independent check of the generalised cost model's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arith.bitops import mask, split_chunks
from repro.arith.koggestone import (
    SCRATCH_ROWS,
    KoggeStoneAdder,
    KoggeStoneLayout,
)
from repro.arith.rowmul import RowMultiplier, RowMultiplierSpec
from repro.crossbar.array import CrossbarArray
from repro.karatsuba.unroll import UnrolledPlan, build_plan
from repro.magic.executor import MagicExecutor, int_to_bits
from repro.sim.clock import Clock
from repro.sim.exceptions import DesignError


class _AdderUnit:
    """A standalone Kogge-Stone instance with value-level staging."""

    def __init__(self, width: int, clock: Clock):
        self.width = width
        self.cols = width + 1
        self.array = CrossbarArray(3 + SCRATCH_ROWS, self.cols)
        self.executor = MagicExecutor(self.array, clock=clock)
        self.adder = KoggeStoneAdder(
            KoggeStoneLayout(
                width=width,
                col0=0,
                x_row=0,
                y_row=1,
                out_row=2,
                scratch_rows=tuple(range(3, 3 + SCRATCH_ROWS)),
            )
        )
        self.array.init_rows(self.adder.layout.scratch_rows)
        self.array.init_rows([2])
        self.passes = 0

    def run(self, op: str, x: int, y: int) -> int:
        if x >> self.cols or y >> self.cols:
            raise DesignError("operand exceeds the adder window")
        if op == "sub" and y > x:
            raise DesignError("subtraction went negative")
        self.array.write_row(0, int_to_bits(x, self.cols))
        self.array.write_row(1, int_to_bits(y, self.cols))
        self.executor.execute(self.adder.program(op))
        word = self.array.read_row(2)
        value = 0
        for i in range(self.cols):
            if word[i]:
                value |= 1 << i
        expected = x + y if op == "add" else x - y
        if value != expected:
            raise AssertionError(f"{op} produced {value}, expected {expected}")
        self.passes += 1
        return value


@dataclass(frozen=True)
class GenericRunStats:
    """Measured execution profile of one generic multiplication."""

    precompute_cycles: int
    multiply_cycles: int
    postcompute_cycles: int
    precompute_passes: int
    postcompute_passes: int

    @property
    def total_cycles(self) -> int:
        return (
            self.precompute_cycles
            + self.multiply_cycles
            + self.postcompute_cycles
        )


class GenericKaratsubaMultiplier:
    """Executable unrolled Karatsuba design at any depth.

    >>> mul = GenericKaratsubaMultiplier(64, depth=3)
    >>> mul.multiply(123456789, 987654321)
    121932631112635269
    """

    def __init__(self, n_bits: int, depth: int):
        self.plan: UnrolledPlan = build_plan(n_bits, depth)
        self.n_bits = n_bits
        self.depth = depth
        self.clock = Clock()
        pre_width = self.plan.max_precompute_input_width + 1
        self.pre_adder = _AdderUnit(pre_width, self.clock)
        post_width = (3 * n_bits) // 2 - 1
        self.post_adder = _AdderUnit(post_width, self.clock)
        spec = RowMultiplierSpec(self.plan.max_mult_width)
        self.rows: Dict[str, RowMultiplier] = {
            step.out: RowMultiplier(spec) for step in self.plan.multiplications
        }
        self.last_stats: GenericRunStats = None

    # ------------------------------------------------------------------
    def multiply(self, a: int, b: int) -> int:
        """One full multiplication through the generic datapath."""
        if a < 0 or b < 0:
            raise DesignError("operands must be non-negative")
        if a >> self.n_bits or b >> self.n_bits:
            raise DesignError(f"operands must fit in {self.n_bits} bits")
        plan = self.plan
        chunk_bits = plan.chunk_bits

        # ---- precompute -------------------------------------------------
        start = self.clock.cycles
        pre_passes_before = self.pre_adder.passes
        values: Dict[str, int] = {}
        for prefix, operand in (("a", a), ("b", b)):
            for i, chunk in enumerate(
                split_chunks(operand, chunk_bits, plan.num_chunks)
            ):
                values[f"{prefix}{i}"] = chunk
        self.clock.tick(2 * plan.num_chunks, category="write")
        for step in plan.precompute_adds:
            values[step.out] = self.pre_adder.run(
                "add", values[step.lhs], values[step.rhs]
            )
        self.clock.tick(1, category="init")
        pre_cycles = self.clock.cycles - start
        pre_passes = self.pre_adder.passes - pre_passes_before

        # ---- multiply (lock-step rows) ---------------------------------
        start = self.clock.cycles
        for step in plan.multiplications:
            values[step.out] = self.rows[step.out].multiply(
                values[step.lhs], values[step.rhs]
            )
        self.clock.tick(
            RowMultiplierSpec(plan.max_mult_width).latency_cc,
            category="rowmul",
        )
        mult_cycles = self.clock.cycles - start

        # ---- postcompute -------------------------------------------------
        start = self.clock.cycles
        post_passes_before = self.post_adder.passes
        result = self._combine(values)
        self.clock.tick(2 * len(plan.multiplications), category="reorder")
        post_cycles = self.clock.cycles - start
        post_passes = self.post_adder.passes - post_passes_before

        self.last_stats = GenericRunStats(
            precompute_cycles=pre_cycles,
            multiply_cycles=mult_cycles,
            postcompute_cycles=post_cycles,
            precompute_passes=pre_passes,
            postcompute_passes=post_passes,
        )
        if result != a * b:
            raise AssertionError("generic datapath produced a wrong product")
        return result

    # ------------------------------------------------------------------
    def _combine(self, values: Dict[str, int]) -> int:
        """Walk the combine tree bottom-up on the postcompute adder."""
        plan = self.plan
        for node in plan.combine_nodes:
            low = values[node.low]
            high = values[node.high]
            mid = values[node.mid]
            shift = node.shift_bits
            if node.path == "top":
                # Top level: LSB pass-through trick, as in Sec. IV-E.
                t = self.post_adder.run("add", low, high)
                tilde = self.post_adder.run("sub", mid, t)
                low_keep = low & mask(shift)
                top_operand = (low >> shift) | (high << shift)
                total = self.post_adder.run("add", top_operand, tilde)
                values[node.out] = (total << shift) | low_keep
                continue
            t = self.post_adder.run("add", low, high)
            tilde = self.post_adder.run("sub", mid, t)
            if node.appendable:
                u = low | (high << (2 * shift))
            else:
                u = self.post_adder.run("add", low, high << (2 * shift))
            values[node.out] = self.post_adder.run("add", u, tilde << shift)
        return values[plan.combine_nodes[-1].out]

    # ------------------------------------------------------------------
    @property
    def area_cells(self) -> int:
        """Measured footprint of the instantiated units."""
        mult_cells = sum(row.spec.cells for row in self.rows.values())
        return (
            self.pre_adder.array.cells
            + self.post_adder.array.cells
            + mult_cells
        )


def depth_study(
    n_bits: int = 64, depths: Tuple[int, ...] = (1, 2, 3)
) -> Dict[int, GenericRunStats]:
    """Run one multiplication per depth and return the measured stats
    (a functional counterpart to Fig. 4's analytic sweep)."""
    import random

    rng = random.Random(0xF164)
    out: Dict[int, GenericRunStats] = {}
    for depth in depths:
        if n_bits % (1 << depth):
            continue
        mul = GenericKaratsubaMultiplier(n_bits, depth)
        a, b = rng.getrandbits(n_bits), rng.getrandbits(n_bits)
        mul.multiply(a, b)
        out[depth] = mul.last_stats
    return out
