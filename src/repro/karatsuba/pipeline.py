"""Three-stage pipeline timing model (paper Sec. IV-A).

The design operates on three multiplications simultaneously: while job
i is in postcomputation, job i+1 multiplies and job i+2 precomputes.
Latency of one multiplication is the *sum* of stage latencies; steady
state throughput is set by the *maximum* stage latency:

    throughput = 10^6 / max(stage latency)   multiplications per Mcc.

:class:`KaratsubaPipeline` combines the functional controller with this
timing model and can replay an operand stream, reporting both the
bit-exact products and the pipelined makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.karatsuba.controller import JobRecord, KaratsubaController
from repro.sim.exceptions import DesignError
from repro.telemetry import spans as _telemetry
from repro.telemetry.spans import NOOP_SPAN

#: Default operand sets per SIMD sweep of the batched executor.
DEFAULT_BATCH_SIZE = 32


@dataclass(frozen=True)
class PipelineTiming:
    """Static timing summary of the pipelined design."""

    n_bits: int
    stage_latencies: Tuple[int, int, int]
    #: Stage labels, slot for slot.  The Karatsuba datapath keeps the
    #: paper's names; portfolio designs (Toom-3, schoolbook) relabel
    #: their three slots without changing the timing algebra.
    stage_names: Tuple[str, str, str] = ("precompute", "multiply", "postcompute")

    @property
    def latency_cc(self) -> int:
        """Fill latency of one multiplication (sum of stages)."""
        return sum(self.stage_latencies)

    @property
    def bottleneck_cc(self) -> int:
        """Initiation interval: the slowest stage."""
        return max(self.stage_latencies)

    @property
    def bottleneck_stage(self) -> str:
        return self.stage_names[self.stage_latencies.index(self.bottleneck_cc)]

    @property
    def throughput_per_mcc(self) -> float:
        """Steady-state multiplications per 10^6 clock cycles."""
        return 1e6 / self.bottleneck_cc

    def makespan_cc(self, jobs: int) -> int:
        """Total cycles to finish *jobs* multiplications back-to-back."""
        if jobs < 0:
            raise DesignError("job count must be non-negative")
        if jobs == 0:
            return 0
        return self.latency_cc + (jobs - 1) * self.bottleneck_cc


@dataclass(frozen=True)
class StreamResult:
    """Outcome of replaying an operand stream through the pipeline."""

    products: List[int]
    makespan_cc: int
    timing: PipelineTiming

    @property
    def achieved_throughput_per_mcc(self) -> float:
        if self.makespan_cc == 0:
            return 0.0
        return len(self.products) * 1e6 / self.makespan_cc


class KaratsubaPipeline:
    """Functional + timing model of the pipelined CIM multiplier.

    The timing algebra, stream replay and telemetry are datapath-
    agnostic: subclasses (the :mod:`repro.portfolio` Toom-3 and
    schoolbook designs) swap :attr:`controller_factory` for another
    controller with the same surface and inherit everything else.
    """

    #: Controller class driving the three pipeline slots.  Any class
    #: with the :class:`KaratsubaController` surface (job records,
    #: ``stage_latencies``, wear/energy/reliability accessors) slots in.
    controller_factory = KaratsubaController

    def __init__(
        self,
        n_bits: int,
        wear_leveling: bool = True,
        device=None,
        spare_rows: int = 2,
        residue_bits: int = 8,
        optimize: bool = False,
        backend: object = "bitplane",
    ):
        self.controller = type(self).controller_factory(
            n_bits,
            wear_leveling=wear_leveling,
            device=device,
            spare_rows=spare_rows,
            residue_bits=residue_bits,
            optimize=optimize,
            backend=backend,
        )
        self.n_bits = n_bits
        self.backend = backend

    def timing(self) -> PipelineTiming:
        return PipelineTiming(
            n_bits=self.n_bits,
            stage_latencies=self.controller.stage_latencies(),
            stage_names=getattr(
                self.controller,
                "stage_names",
                ("precompute", "multiply", "postcompute"),
            ),
        )

    def multiply(self, a: int, b: int) -> int:
        """Single bit-exact multiplication (unpipelined semantics)."""
        return self.controller.run_job(a, b).product

    def run_stream(
        self,
        operand_pairs: Iterable[Tuple[int, int]],
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    ) -> StreamResult:
        """Replay a stream of multiplications.

        By default the stream executes batched: chunks of *batch_size*
        jobs run through the compiled-once SIMD executor (one pass of
        numpy kernels per stage and wear state), which is how the
        simulator keeps up with the hardware's row-parallel execution.
        Pass ``batch_size=None`` to force the scalar job-by-job path —
        the differential-testing oracle.  Products, per-job cycles,
        wear and energy are bit-identical either way.

        The reported makespan applies the pipeline model: one fill
        latency plus one bottleneck interval per extra job — valid
        because stages use disjoint subarrays and hand over results
        through the controller.
        """
        pairs = list(operand_pairs)
        tracer = _telemetry.active()
        stream_span = (
            tracer.span("pipeline.stream", width=self.n_bits, jobs=len(pairs))
            if tracer is not None
            else NOOP_SPAN
        )
        with stream_span as span:
            if batch_size is None:
                records: List[JobRecord] = [
                    self.controller.run_job(a, b) for a, b in pairs
                ]
            else:
                if batch_size < 1:
                    raise DesignError("batch size must be at least 1")
                records = []
                for begin in range(0, len(pairs), batch_size):
                    records.extend(
                        self.controller.run_jobs_batch(
                            pairs[begin : begin + batch_size]
                        )
                    )
            timing = self.timing()
            makespan = timing.makespan_cc(len(records))
            span.set(makespan_cc=makespan, bottleneck_cc=timing.bottleneck_cc)
        return StreamResult(
            products=[record.product for record in records],
            makespan_cc=makespan,
            timing=timing,
        )
