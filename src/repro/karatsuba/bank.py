"""Banked deployment of pipelined CIM multipliers.

The paper evaluates a single three-stage datapath; real FHE/ZKP
accelerators would tile many of them across a memory die (its intro
cites multi-gigabyte working sets).  This module models a *bank* of
identical pipelined multipliers fed from one job queue:

* functional path — every job still runs bit-exactly through a
  simulated datapath;
* timing path — jobs are assigned least-loaded-first (a balanced
  ceil/floor split on a homogeneous bank); each datapath accepts one
  job per bottleneck interval, so the bank's steady-state throughput is
  ``k * 1e6 / bottleneck_cc`` for ``k`` datapaths;
* cost path — area scales linearly; ATP is invariant in ``k`` (the
  useful figure is throughput per area, which banking preserves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.karatsuba.pipeline import (
    DEFAULT_BATCH_SIZE,
    KaratsubaPipeline,
    PipelineTiming,
)
from repro.sim.exceptions import DesignError
from repro.telemetry import spans as _telemetry
from repro.telemetry.spans import NOOP_SPAN


@dataclass(frozen=True)
class BankTiming:
    """Static timing of a k-wide multiplier bank."""

    n_bits: int
    ways: int
    pipeline: PipelineTiming

    @property
    def throughput_per_mcc(self) -> float:
        return self.ways * self.pipeline.throughput_per_mcc

    @property
    def area_cells(self) -> int:
        from repro.karatsuba import cost

        return self.ways * cost.design_cost(self.n_bits, 2).area_cells

    @property
    def atp(self) -> float:
        """Banking leaves the area-time product unchanged."""
        return self.area_cells / self.throughput_per_mcc

    def makespan_cc(self, jobs: int) -> int:
        """Cycles to drain *jobs* multiplications over the bank."""
        if jobs < 0:
            raise DesignError("job count must be non-negative")
        if jobs == 0:
            return 0
        per_way = -(-jobs // self.ways)     # ceiling division
        return self.pipeline.makespan_cc(per_way)


@dataclass(frozen=True)
class BankStreamResult:
    """Outcome of draining a job stream through the bank."""

    products: List[int]
    makespan_cc: int
    per_way_jobs: List[int]

    @property
    def achieved_throughput_per_mcc(self) -> float:
        if self.makespan_cc == 0:
            return 0.0
        return len(self.products) * 1e6 / self.makespan_cc


class MultiplierBank:
    """A bank of ``ways`` identical pipelined Karatsuba multipliers."""

    def __init__(self, n_bits: int, ways: int, wear_leveling: bool = True):
        if ways < 1:
            raise DesignError("a bank needs at least one way")
        self.n_bits = n_bits
        self.ways = ways
        self.pipelines = [
            KaratsubaPipeline(n_bits, wear_leveling=wear_leveling)
            for _ in range(ways)
        ]

    # ------------------------------------------------------------------
    def timing(self) -> BankTiming:
        return BankTiming(
            n_bits=self.n_bits,
            ways=self.ways,
            pipeline=self.pipelines[0].timing(),
        )

    def run_stream(
        self,
        operand_pairs: Iterable[Tuple[int, int]],
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    ) -> BankStreamResult:
        """Drain a job stream over the ways; all products bit-exact.

        Jobs are assigned *least-loaded first*: each job goes to the
        way with the least queued work (ties break on the lowest way
        index), which for a homogeneous bank yields the balanced
        ceil/floor split — the distribution
        :meth:`BankTiming.makespan_cc` assumes, so the reported
        makespan always agrees with the static model.  Each way then
        drains its assignment through the batched SIMD path (pass
        ``batch_size=None`` to force the scalar oracle path).
        """
        pairs = list(operand_pairs)
        per_way = [0] * self.ways
        if not pairs:
            return BankStreamResult(
                products=[], makespan_cc=0, per_way_jobs=per_way
            )
        timing = self.pipelines[0].timing()
        # Least-loaded assignment.  Every job of a fixed-width bank
        # occupies its way for one bottleneck interval, so queued work
        # is proportional to the job count; tracking cycles (not
        # counts) keeps the policy correct if ways ever diverge.
        loads = [0] * self.ways
        assignments: List[List[int]] = [[] for _ in range(self.ways)]
        for index in range(len(pairs)):
            way = min(range(self.ways), key=lambda w: (loads[w], w))
            assignments[way].append(index)
            loads[way] += timing.bottleneck_cc
            per_way[way] += 1
        tracer = _telemetry.active()
        bank_span = (
            tracer.span(
                "bank.stream",
                width=self.n_bits,
                ways=self.ways,
                jobs=len(pairs),
            )
            if tracer is not None
            else NOOP_SPAN
        )
        with bank_span as span:
            products: List[int] = [0] * len(pairs)
            for way, indices in enumerate(assignments):
                if not indices:
                    continue
                way_span = (
                    tracer.span(f"way{way}", track=f"way{way}", jobs=len(indices))
                    if tracer is not None
                    else NOOP_SPAN
                )
                with way_span:
                    result = self.pipelines[way].run_stream(
                        [pairs[i] for i in indices], batch_size=batch_size
                    )
                for index, product in zip(indices, result.products):
                    products[index] = product
            # Ways run concurrently: the fullest way bounds completion.
            # Balanced assignment makes this identical to the static
            # BankTiming.makespan_cc(len(pairs)).
            makespan = timing.makespan_cc(max(per_way))
            span.set(makespan_cc=makespan)
        return BankStreamResult(
            products=products, makespan_cc=makespan, per_way_jobs=per_way
        )

    # ------------------------------------------------------------------
    def scaling_table(self, max_ways: int = 8) -> List[Tuple[int, float, int]]:
        """(ways, throughput, area) rows for a scaling study."""
        from repro.karatsuba import cost

        base = self.pipelines[0].timing().throughput_per_mcc
        area = cost.design_cost(self.n_bits, 2).area_cells
        return [
            (k, k * base, k * area) for k in range(1, max_ways + 1)
        ]
