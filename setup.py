"""Legacy setup shim so editable installs work without the `wheel` package."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(
        where="src", exclude=["*.egg-info", "*.egg-info.*"]
    ),
    install_requires=["numpy>=1.21"],
    python_requires=">=3.9",
)
